// Numerical guardrails and guarded execution for MD runs.
//
// A production run on the simulated machine must notice when the physics
// goes bad — NaN/Inf escaping into coordinates, forces blowing past the
// short-range table range, values that would saturate the chip's fixed-point
// grid format, or NVE energy drifting beyond tolerance — and react by
// policy: log and continue (warn), roll back to the last good checkpoint
// (recover), or stop the run (abort).
//
// The policy is selectable at runtime through the TME_GUARDRAIL ladder
// warn | recompute | recover | abort, so the same binary serves CI soaks
// (abort fast) and long production-style runs (recompute, falling back to
// recover).  `recompute` is the localized rung: the driver keeps the
// pre-step state in memory and re-runs just the violating step — a
// transient upset (the SDC fault model in hw/fault) replays clean, so no
// checkpoint I/O and no completed steps are lost.  Only when the violation
// persists does it escalate to the checkpoint rollback, and from there to
// abort.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fixed/fixed_point.hpp"
#include "md/integrator.hpp"
#include "md/system.hpp"

namespace tme {

// Ordered escalation ladder: each rung reacts more drastically than the one
// before it, and the two recovery rungs fall through to the next rung when
// they cannot repair the run.
enum class GuardrailPolicy { kWarn, kRecompute, kRecover, kAbort };

// Reads TME_GUARDRAIL ("warn" | "recompute" | "recover" | "abort",
// case-sensitive).  Unset keeps the fallback; a malformed value logs a
// warning and keeps the fallback.
GuardrailPolicy guardrail_policy_from_env(
    GuardrailPolicy fallback = GuardrailPolicy::kWarn);

const char* to_string(GuardrailPolicy policy);

struct GuardrailConfig {
  GuardrailPolicy policy = GuardrailPolicy::kWarn;
  // Any |force component| above this is a blow-up (kJ mol^-1 nm^-1); generous
  // default — healthy TIP3P forces stay orders of magnitude below.
  double max_force = 1e7;
  // Relative NVE drift tolerance: |E(t) - E(ref)| <= tol * max(|E(ref)|,
  // energy_floor), referenced to the first checked step.
  double energy_drift_tol = 0.05;
  double energy_floor = 1.0;  // kJ/mol, guards the relative test near E = 0
  // When set, count force components that would saturate the chip's grid
  // fixed-point format (src/fixed) and flag any overflow.
  bool check_fixed_overflow = false;
  FixedFormat fixed_format{};
};

struct GuardrailViolation {
  std::uint64_t step = 0;
  std::string what;
};

class Guardrail {
 public:
  explicit Guardrail(GuardrailConfig config) : config_(std::move(config)) {}

  const GuardrailConfig& config() const { return config_; }

  // Inspects post-step state; returns the violations found this step (empty
  // = healthy) and remembers them (see violations()).  The first checked
  // step's total energy becomes the drift reference.  Never throws — the
  // policy reaction is the caller's job (see run_guarded).
  std::vector<GuardrailViolation> check(const ParticleSystem& system,
                                        const StepReport& report,
                                        std::uint64_t step);

  const std::vector<GuardrailViolation>& violations() const { return violations_; }

  // Re-arm the drift reference (after a checkpoint restore the next checked
  // step re-establishes it).
  void reset_energy_reference() { reference_energy_.reset(); }

 private:
  GuardrailConfig config_;
  std::optional<double> reference_energy_;
  std::vector<GuardrailViolation> violations_;
};

// --- guarded run driver ------------------------------------------------------

struct GuardedRunParams {
  GuardrailConfig guardrail;
  // Empty = no checkpointing (recover policy then degrades to abort).
  std::string checkpoint_path;
  std::uint64_t checkpoint_interval = 100;  // steps between checkpoint writes
  int max_recoveries = 3;
  // Step-local retries under the recompute policy before escalating to the
  // checkpoint rollback (budget for the whole run, not per step).
  int max_step_recomputes = 3;
  // Wall-clock watchdog: if a step makes no progress for this long, a
  // diagnostic dump is logged from the monitor thread and the result is
  // flagged (watchdog_fired).  0 disables the watchdog.
  double watchdog_timeout_s = 0.0;
  // Test hook: invoked before each step's force half-kick with the step
  // number about to be computed; lets tests corrupt state mid-run.  The hook
  // models a *transient* upset: it is not replayed on a recompute retry of
  // the same step.
  std::function<void(std::uint64_t, ParticleSystem&)> fault_hook;
};

struct GuardedRunResult {
  std::uint64_t steps_completed = 0;  // steps that passed the guardrail
  int recoveries = 0;
  int step_recomputes = 0;  // localized retries that avoided a rollback
  bool aborted = false;
  bool watchdog_fired = false;
  std::size_t violation_count = 0;
  StepReport last_report;
};

// Runs `steps` Velocity-Verlet steps under the guardrail: primes the system,
// checkpoints every `checkpoint_interval` steps (if a path is set), checks
// every step, and reacts per the escalation ladder — warn logs and
// continues; recompute restores the in-memory pre-step state and re-runs
// just that step (bounded by max_step_recomputes), escalating on a
// persistent violation; recover rolls back to the last checkpoint (bounded
// by max_recoveries, then aborts); abort stops the run with
// `aborted = true`.  A non-zero watchdog_timeout_s arms a wall-clock
// watchdog that logs a diagnostic dump if a step stalls.
GuardedRunResult run_guarded(ParticleSystem& system, const Topology& topology,
                             const ForceField& ff, const VelocityVerlet& integrator,
                             std::uint64_t steps, const GuardedRunParams& params);

}  // namespace tme
