// Binary checkpoint / restart for MD runs.
//
// A checkpoint captures the complete integrator-visible state of a
// ParticleSystem — positions, velocities, *and* forces (Velocity-Verlet's
// first half-kick uses the forces of the previous step), plus masses,
// charges, box and step counter — so a restored run continues
// bitwise-identically to one that never stopped.  The payload carries a
// trailing CRC-32; a flipped bit or truncated file is rejected on read
// rather than silently resuming from garbage.
//
// Format (little-endian, version 1):
//   magic "TMECKPT\0" | u32 version | u64 step | u64 n_particles |
//   box lengths 3 x f64 |
//   positions 3n x f64 | velocities 3n x f64 | forces 3n x f64 |
//   masses n x f64 | charges n x f64 |
//   u32 CRC-32 over everything above
#pragma once

#include <cstdint>
#include <string>

#include "md/system.hpp"

namespace tme {

struct Checkpoint {
  std::uint64_t step = 0;
  ParticleSystem system;
};

// Writes atomically enough for a crash-interrupted run: the file is staged
// as <path>.tmp and renamed into place, so `path` always holds either the
// previous checkpoint or a complete new one.
void write_checkpoint(const std::string& path, const ParticleSystem& system,
                      std::uint64_t step);

// Throws std::runtime_error on a missing file, bad magic, unsupported
// version, truncation, or CRC mismatch.
Checkpoint read_checkpoint(const std::string& path);

}  // namespace tme
