// Binary checkpoint / restart for MD runs.
//
// A checkpoint captures the complete integrator-visible state of a
// ParticleSystem — positions, velocities, *and* forces (Velocity-Verlet's
// first half-kick uses the forces of the previous step), plus masses,
// charges, box and step counter — so a restored run continues
// bitwise-identically to one that never stopped.  The payload carries a
// trailing CRC-32; a flipped bit or truncated file is rejected on read
// rather than silently resuming from garbage.
//
// Format (little-endian, version 1):
//   magic "TMECKPT\0" | u32 version | u64 step | u64 n_particles |
//   box lengths 3 x f64 |
//   positions 3n x f64 | velocities 3n x f64 | forces 3n x f64 |
//   masses n x f64 | charges n x f64 |
//   u32 CRC-32 over everything above
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "md/system.hpp"

namespace tme {

struct Checkpoint {
  std::uint64_t step = 0;
  ParticleSystem system;
};

// What exactly was wrong with a rejected checkpoint file.  Callers that
// distinguish "no file yet" (fresh start) from "file exists but is damaged"
// (fall back to an older generation, alert) switch on this instead of
// parsing message strings.
enum class CheckpointFault {
  kMissingFile,   // cannot open for reading
  kTruncated,     // shorter than its own structure claims
  kCrcMismatch,   // seal does not cover the bytes on disk
  kBadMagic,      // not a TME checkpoint at all
  kBadVersion,    // format newer/older than this build understands
  kBadLength,     // declared particle count disagrees with the payload size
  kIoError,       // write-side open/write/fsync/rename failure
  kNoSpace,       // ENOSPC or persistent short write: the device is full
  kResource,      // allocation refused while sizing the restore buffers
};

const char* to_string(CheckpointFault fault);

class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointFault fault, const std::string& what)
      : std::runtime_error(what), fault_(fault) {}
  CheckpointFault fault() const { return fault_; }

 private:
  CheckpointFault fault_;
};

// Writes atomically *and durably* for a crash-interrupted run: the file is
// staged as <path>.tmp, fsynced, renamed into place, and the parent
// directory is fsynced after the rename — so after a power cut `path`
// holds either the previous checkpoint or a complete new one, never a torn
// or merely-cached write.  All IO goes through tme::io::IoShim, so the
// chaos harness can inject ENOSPC / short writes / EINTR storms / fsync
// failures; those surface as typed CheckpointErrors (kNoSpace, kIoError)
// with the temp file unlinked, leaving older generations untouched.
void write_checkpoint(const std::string& path, const ParticleSystem& system,
                      std::uint64_t step);

// Throws CheckpointError (a std::runtime_error) on a missing file, bad
// magic, unsupported version, truncation, or CRC mismatch.  Every header
// field is validated against the actual file size before any allocation is
// sized from it.
Checkpoint read_checkpoint(const std::string& path);

// Generational writes: shifts path -> path.1 -> ... -> path.<keep-1> before
// renaming the fresh checkpoint into `path`, so a write torn by a crash (or
// a disk that lies) still leaves the previous generation intact.
void write_checkpoint_rotating(const std::string& path,
                               const ParticleSystem& system,
                               std::uint64_t step, int keep = 2);

// Restores the newest readable generation: `path` first, then path.1, ...
// A damaged newer file is skipped (and counted under
// md/checkpoint/fallbacks); if no generation is readable the error from the
// newest file is rethrown.  `used`, when non-null, reports which file loaded.
Checkpoint read_latest_checkpoint(const std::string& path, int keep = 2,
                                  std::string* used = nullptr);

}  // namespace tme
