#include "md/water_box.hpp"

#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tme {

namespace {

using namespace constants;

// TIP3P molecular geometry in a local frame: O at the apex, H's below,
// centred on O.
struct WaterTemplate {
  Vec3 o{0.0, 0.0, 0.0};
  Vec3 h1, h2;

  WaterTemplate() {
    const double half_angle = 0.5 * kTip3pAngleHOH * M_PI / 180.0;
    h1 = {kTip3pBondOH * std::sin(half_angle), 0.0, kTip3pBondOH * std::cos(half_angle)};
    h2 = {-kTip3pBondOH * std::sin(half_angle), 0.0, kTip3pBondOH * std::cos(half_angle)};
  }
};

// Random rotation matrix via a uniformly random unit quaternion.
struct Rotation {
  Vec3 col0, col1, col2;

  static Rotation random(Rng& rng) {
    // Shoemake's method: uniform quaternion from three uniforms.
    const double u1 = rng.uniform(), u2 = rng.uniform(), u3 = rng.uniform();
    const double qx = std::sqrt(1.0 - u1) * std::sin(2.0 * M_PI * u2);
    const double qy = std::sqrt(1.0 - u1) * std::cos(2.0 * M_PI * u2);
    const double qz = std::sqrt(u1) * std::sin(2.0 * M_PI * u3);
    const double qw = std::sqrt(u1) * std::cos(2.0 * M_PI * u3);
    Rotation r;
    r.col0 = {1 - 2 * (qy * qy + qz * qz), 2 * (qx * qy + qz * qw),
              2 * (qx * qz - qy * qw)};
    r.col1 = {2 * (qx * qy - qz * qw), 1 - 2 * (qx * qx + qz * qz),
              2 * (qy * qz + qx * qw)};
    r.col2 = {2 * (qx * qz + qy * qw), 2 * (qy * qz - qx * qw),
              1 - 2 * (qx * qx + qy * qy)};
    return r;
  }

  Vec3 apply(const Vec3& v) const { return v.x * col0 + v.y * col1 + v.z * col2; }
};

}  // namespace

std::size_t WaterBox::degrees_of_freedom() const {
  return 3 * system.size() - topology.constraint_count() - 3;
}

WaterBoxSpec paper_table1_spec() {
  WaterBoxSpec spec;
  spec.molecules = 32773;
  spec.box_length = 9.97270;
  return spec;
}

void add_ion_pairs(WaterBox& box, std::size_t pairs, std::uint64_t seed) {
  if (pairs == 0) return;
  if (2 * pairs > box.molecules) {
    throw std::invalid_argument("add_ion_pairs: not enough waters to replace");
  }
  // Joung–Cheatham (TIP3P-matched) ion parameters.
  struct IonSpec {
    double charge, mass, sigma, epsilon;
  };
  const IonSpec na{+1.0, 22.98977, 0.2439, 0.36585};
  const IonSpec cl{-1.0, 35.45300, 0.4478, 0.14891};

  // Pick 2*pairs distinct molecules to convert.
  Rng rng(seed);
  std::vector<std::size_t> chosen;
  std::vector<bool> taken(box.molecules, false);
  while (chosen.size() < 2 * pairs) {
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(box.molecules)));
    if (m >= box.molecules || taken[m]) continue;
    taken[m] = true;
    chosen.push_back(m);
  }

  WaterBox out;
  out.system.box = box.system.box;
  std::size_t ion_index = 0;
  // Waters first (preserving rigid groups), then ions.
  std::vector<std::pair<std::size_t, IonSpec>> ions;  // (source O atom, spec)
  for (std::size_t m = 0; m < box.molecules; ++m) {
    const std::size_t o = 3 * m;
    if (taken[m]) {
      ions.emplace_back(o, (ion_index++ % 2 == 0) ? na : cl);
      continue;
    }
    const std::size_t base = out.system.positions.size();
    for (std::size_t a = o; a < o + 3; ++a) {
      out.system.positions.push_back(box.system.positions[a]);
      out.system.velocities.push_back(box.system.velocities[a]);
      out.system.forces.push_back({});
      out.system.masses.push_back(box.system.masses[a]);
      out.system.charges.push_back(box.system.charges[a]);
      out.topology.lj().push_back(box.topology.lj()[a]);
    }
    out.topology.add_rigid_water({base, base + 1, base + 2});
    ++out.molecules;
  }
  for (const auto& [o, spec] : ions) {
    out.system.positions.push_back(box.system.positions[o]);
    // Rescale the donor oxygen's velocity to the ion mass (same kinetic
    // energy share).
    out.system.velocities.push_back(box.system.velocities[o] *
                                    std::sqrt(box.system.masses[o] / spec.mass));
    out.system.forces.push_back({});
    out.system.masses.push_back(spec.mass);
    out.system.charges.push_back(spec.charge);
    out.topology.lj().push_back({spec.sigma, spec.epsilon});
  }
  out.topology.finalize(out.system.size());
  box = std::move(out);
}

WaterBox build_water_box(const WaterBoxSpec& spec) {
  if (spec.molecules == 0) throw std::invalid_argument("build_water_box: empty box");
  WaterBox out;
  out.molecules = spec.molecules;

  double box_length = spec.box_length;
  if (box_length <= 0.0) {
    // TIP3P liquid number density ~ 33.0 molecules / nm^3 (0.986 g/cm^3).
    box_length = std::cbrt(static_cast<double>(spec.molecules) / 33.0);
  }
  out.system.box.lengths = {box_length, box_length, box_length};

  std::size_t cells = 1;
  while (cells * cells * cells < spec.molecules) ++cells;
  const double spacing = box_length / static_cast<double>(cells);

  const std::size_t n_atoms = 3 * spec.molecules;
  out.system.resize(n_atoms);

  Rng rng(spec.seed);
  const WaterTemplate mol;
  out.topology.lj().resize(n_atoms);  // hydrogens stay LJ-less (TIP3P)
  for (std::size_t m = 0; m < spec.molecules; ++m) {
    const std::size_t cx = m % cells;
    const std::size_t cy = (m / cells) % cells;
    const std::size_t cz = m / (cells * cells);
    // Small jitter keeps the initial configuration off an exact lattice
    // (an exact lattice aliases coherently with the mesh grids).
    const Vec3 centre{(cx + 0.5) * spacing + rng.uniform(-0.02, 0.02),
                      (cy + 0.5) * spacing + rng.uniform(-0.02, 0.02),
                      (cz + 0.5) * spacing + rng.uniform(-0.02, 0.02)};
    const Rotation rot = Rotation::random(rng);

    const std::size_t o = 3 * m, h1 = 3 * m + 1, h2 = 3 * m + 2;
    out.system.positions[o] = out.system.box.wrap(centre + rot.apply(mol.o));
    out.system.positions[h1] = out.system.box.wrap(centre + rot.apply(mol.h1));
    out.system.positions[h2] = out.system.box.wrap(centre + rot.apply(mol.h2));

    out.system.masses[o] = kMassO;
    out.system.masses[h1] = out.system.masses[h2] = kMassH;
    out.system.charges[o] = kTip3pChargeO;
    out.system.charges[h1] = out.system.charges[h2] = kTip3pChargeH;

    out.topology.add_rigid_water({o, h1, h2});
    out.topology.lj()[o] = {kTip3pSigmaO, kTip3pEpsilonO};
  }

  // Maxwell–Boltzmann velocities at the requested temperature; rigid-body
  // projection happens on the first constrained step.
  for (std::size_t i = 0; i < n_atoms; ++i) {
    const double sigma_v =
        std::sqrt(kBoltzmann * spec.temperature / out.system.masses[i]);
    out.system.velocities[i] = {sigma_v * rng.normal(), sigma_v * rng.normal(),
                                sigma_v * rng.normal()};
  }
  out.system.remove_com_motion();

  out.topology.finalize(n_atoms);
  return out;
}

}  // namespace tme
