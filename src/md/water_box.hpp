// TIP3P water box construction — the workload of the paper's accuracy
// evaluation (Table 1: 32,773 molecules in a 9.9727 nm box) and NVE runs
// (Fig. 4).  Molecules are placed on a simple cubic lattice with random
// orientations and Maxwell–Boltzmann velocities; a short steepest-descent
// relaxation is available to remove the worst contacts before dynamics.
#pragma once

#include <cstddef>

#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

struct WaterBoxSpec {
  std::size_t molecules = 768;
  double box_length = 0.0;      // nm; 0 derives from TIP3P liquid density
  double temperature = 300.0;   // K, for initial velocities
  std::uint64_t seed = 2021;
};

struct WaterBox {
  ParticleSystem system;
  Topology topology;
  std::size_t molecules = 0;

  // Unconstrained degrees of freedom: 3N - 3*molecules (SETTLE) - 3 (COM).
  std::size_t degrees_of_freedom() const;
};

WaterBox build_water_box(const WaterBoxSpec& spec);

// Replaces `pairs` water molecules with Na+ / Cl- ion pairs (charges +-1 e,
// Joung–Cheatham-style LJ), keeping the system neutral — the "ions and
// solvent water" composition of the paper's Fig. 9 production system.
void add_ion_pairs(WaterBox& box, std::size_t pairs, std::uint64_t seed = 17);

// The exact configuration of the paper's Table 1 experiment: 32,773 TIP3P
// molecules (N = 98,319) in a 9.97270 nm cube.
WaterBoxSpec paper_table1_spec();

}  // namespace tme
