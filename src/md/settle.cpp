#include "md/settle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tme {

double ConstraintParams::d_hh() const {
  return 2.0 * d_oh * std::sin(0.5 * theta_hoh_deg * M_PI / 180.0);
}

WaterConstraints::WaterConstraints(const Topology& topology,
                                   std::span<const double> masses,
                                   const ConstraintParams& params)
    : params_(params) {
  if (topology.rigid_waters().empty()) return;
  waters_.reserve(topology.rigid_waters().size());
  for (const RigidWater& w : topology.rigid_waters()) {
    waters_.push_back({w.o, w.h1, w.h2});
  }
  m_o_ = masses[waters_.front().o];
  m_h_ = masses[waters_.front().h1];
  for (const Triplet& t : waters_) {
    if (masses[t.o] != m_o_ || masses[t.h1] != m_h_ || masses[t.h2] != m_h_) {
      throw std::invalid_argument("WaterConstraints: SETTLE requires uniform water masses");
    }
  }
  // Canonical triangle (Miyamoto & Kollman): O on the +y axis, H's below.
  //   ra = |COM - O|, rb = distance from COM to the HH line, rc = d_HH / 2.
  const double d_hh = params.d_hh();
  const double height = std::sqrt(params.d_oh * params.d_oh - 0.25 * d_hh * d_hh);
  const double total = m_o_ + 2.0 * m_h_;
  ra_ = 2.0 * m_h_ * height / total;
  rb_ = height - ra_;
  rc_ = 0.5 * d_hh;
}

void WaterConstraints::apply_positions(const Box& box, std::span<const Vec3> previous,
                                       std::vector<Vec3>& positions,
                                       std::vector<Vec3>* velocities, double dt,
                                       ConstraintMethod method) const {
  for (const Triplet& t : waters_) {
    const Vec3 before_o = positions[t.o];
    const Vec3 before_h1 = positions[t.h1];
    const Vec3 before_h2 = positions[t.h2];
    if (method == ConstraintMethod::kSettle) {
      settle_one(box, t, previous, positions);
    } else {
      shake_one(box, t, previous, positions);
    }
    if (velocities != nullptr && dt > 0.0) {
      (*velocities)[t.o] += (positions[t.o] - before_o) / dt;
      (*velocities)[t.h1] += (positions[t.h1] - before_h1) / dt;
      (*velocities)[t.h2] += (positions[t.h2] - before_h2) / dt;
    }
  }
}

namespace {

// Orthonormal basis as a row-major rotation: rows are the axes.
struct Frame {
  Vec3 x, y, z;

  Vec3 to_local(const Vec3& v) const { return {dot(x, v), dot(y, v), dot(z, v)}; }
  Vec3 to_world(const Vec3& v) const { return v.x * x + v.y * y + v.z * z; }
};

}  // namespace

void WaterConstraints::settle_one(const Box& box, const Triplet& t,
                                  std::span<const Vec3> previous,
                                  std::vector<Vec3>& positions) const {
  // Local (unwrapped) coordinates relative to the previous oxygen image so
  // periodic wrapping cannot split a molecule.
  const Vec3 ref = previous[t.o];
  const Vec3 a0{};  // previous O relative to itself
  const Vec3 b0 = box.min_image_disp(previous[t.h1], ref);
  const Vec3 c0 = box.min_image_disp(previous[t.h2], ref);
  Vec3 a1 = box.min_image_disp(positions[t.o], ref);
  Vec3 b1 = box.min_image_disp(positions[t.h1], ref);
  Vec3 c1 = box.min_image_disp(positions[t.h2], ref);

  const double total = m_o_ + 2.0 * m_h_;
  const Vec3 com = (m_o_ * a1 + m_h_ * b1 + m_h_ * c1) / total;
  a1 -= com;
  b1 -= com;
  c1 -= com;
  const Vec3 ob0 = b0 - a0;  // previous H1 relative to previous O
  const Vec3 oc0 = c0 - a0;

  // Primed frame (Miyamoto & Kollman):
  //   z' along the normal of the previous triangle,
  //   x' = a1 x z'  (so a1 lies in the y'z' plane),
  //   y' = z' x x'.
  // Validated sign convention: with this frame the theta root below is the
  // (alpha gamma - beta sqrt(...)) branch, agreeing with SHAKE to 1e-14.
  const Vec3 zd = cross(ob0, oc0);
  Vec3 xd = cross(a1, zd);
  Frame frame;
  frame.z = zd / norm(zd);
  const double nxd = norm(xd);
  if (nxd > 1e-12 * norm(zd) * norm(a1)) {
    frame.x = xd / nxd;
  } else {
    // a1 parallel to the plane normal: any in-plane axis works.
    const Vec3 helper = std::abs(frame.z.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
    frame.x = cross(helper, frame.z);
    frame.x /= norm(frame.x);
  }
  frame.y = cross(frame.z, frame.x);

  // Transform into the primed frame.  The old hydrogens are referenced to
  // the old oxygen (orientation only); the new positions to the new COM.
  const Vec3 b0d = frame.to_local(ob0);
  const Vec3 c0d = frame.to_local(oc0);
  const Vec3 a1d = frame.to_local(a1);
  const Vec3 b1d = frame.to_local(b1);
  const Vec3 c1d = frame.to_local(c1);

  // Rotation angles phi (about x), psi (about y) from the z displacements.
  const double sinphi = std::clamp(a1d.z / ra_, -1.0, 1.0);
  const double cosphi = std::sqrt(1.0 - sinphi * sinphi);
  const double sinpsi =
      std::clamp((b1d.z - c1d.z) / (2.0 * rc_ * cosphi), -1.0, 1.0);
  const double cospsi = std::sqrt(1.0 - sinpsi * sinpsi);

  // Canonical triangle tilted by phi and psi (primed frame, before the
  // final rotation theta about z).
  const double ya2 = ra_ * cosphi;
  const double xb2 = -rc_ * cospsi;
  const double yb2 = -rb_ * cosphi - rc_ * sinpsi * sinphi;
  const double yc2 = -rb_ * cosphi + rc_ * sinpsi * sinphi;

  // Solve for theta from the constraint that the rotation preserve the
  // projection of the old positions onto the new ones (M&K eq. A8).
  const double alpha = xb2 * (b0d.x - c0d.x) + b0d.y * yb2 + c0d.y * yc2;
  const double beta = xb2 * (c0d.y - b0d.y) + b0d.x * yb2 + c0d.x * yc2;
  const double gamma = b0d.x * b1d.y - b1d.x * b0d.y + c0d.x * c1d.y - c1d.x * c0d.y;
  const double a2b2 = alpha * alpha + beta * beta;
  const double under = a2b2 - gamma * gamma;
  const double sintheta =
      (alpha * gamma - beta * std::sqrt(std::max(under, 0.0))) / a2b2;
  const double costheta = std::sqrt(std::max(1.0 - sintheta * sintheta, 0.0));

  // Final constrained positions in the primed frame.
  const Vec3 a3d{-ya2 * sintheta, ya2 * costheta, a1d.z};
  const Vec3 b3d{xb2 * costheta - yb2 * sintheta, xb2 * sintheta + yb2 * costheta,
                 b1d.z};
  const Vec3 c3d{-xb2 * costheta - yc2 * sintheta, -xb2 * sintheta + yc2 * costheta,
                 c1d.z};

  // Back to world coordinates.
  positions[t.o] = frame.to_world(a3d) + com + ref;
  positions[t.h1] = frame.to_world(b3d) + com + ref;
  positions[t.h2] = frame.to_world(c3d) + com + ref;
}

void WaterConstraints::shake_one(const Box& box, const Triplet& t,
                                 std::span<const Vec3> previous,
                                 std::vector<Vec3>& positions) const {
  const Vec3 ref = previous[t.o];
  Vec3 prev[3] = {Vec3{}, box.min_image_disp(previous[t.h1], ref),
                  box.min_image_disp(previous[t.h2], ref)};
  Vec3 cur[3] = {box.min_image_disp(positions[t.o], ref),
                 box.min_image_disp(positions[t.h1], ref),
                 box.min_image_disp(positions[t.h2], ref)};
  const double inv_m[3] = {1.0 / m_o_, 1.0 / m_h_, 1.0 / m_h_};
  const double d_oh = params_.d_oh;
  const double targets[3] = {d_oh * d_oh, d_oh * d_oh,
                             params_.d_hh() * params_.d_hh()};
  const std::size_t pairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};

  for (int iter = 0; iter < params_.shake_max_iterations; ++iter) {
    double worst = 0.0;
    for (int c = 0; c < 3; ++c) {
      const std::size_t i = pairs[c][0], j = pairs[c][1];
      const Vec3 rij = cur[i] - cur[j];
      const double diff = norm2(rij) - targets[c];
      worst = std::max(worst, std::abs(diff));
      const Vec3 rij_prev = prev[i] - prev[j];
      const double denom = 2.0 * (inv_m[i] + inv_m[j]) * dot(rij, rij_prev);
      if (std::abs(denom) < 1e-30) continue;
      const double g = diff / denom;
      cur[i] -= (g * inv_m[i]) * rij_prev;
      cur[j] += (g * inv_m[j]) * rij_prev;
    }
    if (worst < params_.shake_tolerance) break;
  }
  positions[t.o] = cur[0] + ref;
  positions[t.h1] = cur[1] + ref;
  positions[t.h2] = cur[2] + ref;
}

void WaterConstraints::project_velocities(const Box& box,
                                          std::span<const Vec3> positions,
                                          std::vector<Vec3>& velocities) const {
  for (const Triplet& t : waters_) {
    const std::size_t idx[3] = {t.o, t.h1, t.h2};
    const double inv_m[3] = {1.0 / m_o_, 1.0 / m_h_, 1.0 / m_h_};
    const std::size_t pairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};
    // Iterative RATTLE projection; converges geometrically for a triangle.
    for (int iter = 0; iter < params_.shake_max_iterations; ++iter) {
      double worst = 0.0;
      for (int c = 0; c < 3; ++c) {
        const std::size_t i = idx[pairs[c][0]], j = idx[pairs[c][1]];
        const Vec3 rij = box.min_image_disp(positions[i], positions[j]);
        const Vec3 vij = velocities[i] - velocities[j];
        const double r2 = norm2(rij);
        const double k = dot(rij, vij) /
                         (r2 * (inv_m[pairs[c][0]] + inv_m[pairs[c][1]]));
        worst = std::max(worst, std::abs(dot(rij, vij)) / std::sqrt(r2));
        velocities[i] -= (k * inv_m[pairs[c][0]]) * rij;
        velocities[j] += (k * inv_m[pairs[c][1]]) * rij;
      }
      if (worst < params_.shake_tolerance) break;
    }
  }
}

double WaterConstraints::max_violation(const Box& box,
                                       std::span<const Vec3> positions) const {
  double worst = 0.0;
  const double d_oh = params_.d_oh;
  const double d_hh = params_.d_hh();
  for (const Triplet& t : waters_) {
    worst = std::max(worst, std::abs(norm(box.min_image_disp(positions[t.o],
                                                             positions[t.h1])) -
                                     d_oh));
    worst = std::max(worst, std::abs(norm(box.min_image_disp(positions[t.o],
                                                             positions[t.h2])) -
                                     d_oh));
    worst = std::max(worst, std::abs(norm(box.min_image_disp(positions[t.h1],
                                                             positions[t.h2])) -
                                     d_hh));
  }
  return worst;
}

}  // namespace tme
