#include "md/short_range.hpp"

#include <cmath>

#include "ewald/splitting.hpp"
#include "md/cell_list.hpp"
#include "obs/metrics.hpp"
#include "util/constants.hpp"
#include "util/parallel.hpp"

namespace tme {

ShortRangeResult compute_short_range(ParticleSystem& system, const Topology& topology,
                                     const ShortRangeParams& params) {
  TME_PHASE("short_range");
  TME_COUNTER_ADD("short_range/calls", 1);
  ShortRangeResult out;
  const CellList cells(system.box, system.positions, params.cutoff);
  const double cutoff2 = params.cutoff * params.cutoff;
  const auto& lj = topology.lj();

  double lj_shift_6 = 0.0, lj_shift_12 = 0.0;
  if (params.shift_lj) {
    const double inv_rc6 = 1.0 / (cutoff2 * cutoff2 * cutoff2);
    lj_shift_6 = inv_rc6;
    lj_shift_12 = inv_rc6 * inv_rc6;
  }

  cells.for_each_pair(
      system.box, system.positions, params.cutoff, [&](std::size_t i, std::size_t j) {
        if (topology.excluded(i, j)) return;
        const Vec3 d = system.box.min_image_disp(system.positions[i],
                                                 system.positions[j]);
        const double r2 = norm2(d);
        if (r2 >= cutoff2 || r2 == 0.0) return;
        ++out.pair_count;
        double f_over_r = 0.0;

        // Real-space (erfc) Coulomb.
        const double qq = constants::kCoulomb * system.charges[i] * system.charges[j];
        if (qq != 0.0) {
          const double r = std::sqrt(r2);
          out.energy_coulomb += qq * g_short(r, params.alpha);
          f_over_r += -qq * g_short_derivative(r, params.alpha) / r;
        }

        // Lennard-Jones with Lorentz–Berthelot combination.
        const double eps = std::sqrt(lj[i].epsilon * lj[j].epsilon);
        if (eps > 0.0) {
          const double sigma = 0.5 * (lj[i].sigma + lj[j].sigma);
          const double s2 = sigma * sigma / r2;
          const double s6 = s2 * s2 * s2;
          const double s12 = s6 * s6;
          const double sig6 = sigma * sigma * sigma * sigma * sigma * sigma;
          out.energy_lj += 4.0 * eps *
                           (s12 - s6 - (lj_shift_12 * sig6 * sig6 - lj_shift_6 * sig6));
          // F = 24 eps (2 s12 - s6) / r^2 * d.
          f_over_r += 24.0 * eps * (2.0 * s12 - s6) / r2;
        }

        const Vec3 fij = f_over_r * d;
        system.forces[i] += fij;
        system.forces[j] -= fij;
      });
  TME_COUNTER_ADD("short_range/pairs", out.pair_count);
  return out;
}

double apply_exclusion_corrections(ParticleSystem& system, const Topology& topology,
                                   double alpha, ThreadPool* pool) {
  TME_PHASE("exclusion_corrections");
  TME_COUNTER_ADD("exclusion_corrections/calls", 1);
  const auto& exclusions = topology.exclusions();
  const std::size_t n = exclusions.size();
  TME_COUNTER_ADD("exclusion_corrections/pairs", n);
  if (n == 0) return 0.0;

  // Pass 1 (parallel): per-exclusion energy and pair force, no shared writes.
  std::vector<double> pair_energy(n, 0.0);
  std::vector<Vec3> pair_force(n, Vec3{});
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  parallel_for(p, 0, n, [&](std::size_t k) {
    const auto& [i, j] = exclusions[k];
    const Vec3 d = system.box.min_image_disp(system.positions[i], system.positions[j]);
    const double r = norm(d);
    const double qq = constants::kCoulomb * system.charges[i] * system.charges[j];
    if (qq == 0.0 || r == 0.0) return;
    pair_energy[k] = -qq * g_long(r, alpha);
    // Subtracting the erf pair term adds the opposite of its force.
    pair_force[k] = (qq * g_long_derivative(r, alpha) / r) * d;
  });

  // Pass 2 (serial, list order): scatter and sum — bitwise independent of
  // the pool size.
  double energy = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto& [i, j] = exclusions[k];
    system.forces[i] += pair_force[k];
    system.forces[j] -= pair_force[k];
    energy += pair_energy[k];
  }
  return energy;
}

}  // namespace tme
