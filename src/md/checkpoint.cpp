#include "md/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/io_shim.hpp"

namespace tme {

namespace {

constexpr char kMagic[8] = {'T', 'M', 'E', 'C', 'K', 'P', 'T', '\0'};
constexpr std::uint32_t kVersion = 1;

// Payload serialisation into a flat byte buffer: simplest way to both write
// in one shot and CRC the exact bytes on disk.
class Writer {
 public:
  void raw(const void* data, std::size_t len) {
    const std::size_t old = bytes_.size();
    bytes_.resize(old + len);
    std::memcpy(bytes_.data() + old, data, len);
  }
  template <typename T>
  void value(const T& v) {
    raw(&v, sizeof(T));
  }
  void vecs(const std::vector<Vec3>& v) {
    for (const Vec3& e : v) {
      value(e.x);
      value(e.y);
      value(e.z);
    }
  }
  void doubles(const std::vector<double>& v) { raw(v.data(), v.size() * sizeof(double)); }

  const std::vector<unsigned char>& bytes() const { return bytes_; }

 private:
  std::vector<unsigned char> bytes_;
};

class Reader {
 public:
  Reader(const unsigned char* data, std::size_t len) : data_(data), len_(len) {}

  void raw(void* out, std::size_t len) {
    if (pos_ + len > len_) {
      throw CheckpointError(CheckpointFault::kTruncated,
                            "checkpoint: truncated file");
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }
  template <typename T>
  T value() {
    T v;
    raw(&v, sizeof(T));
    return v;
  }
  void vecs(std::vector<Vec3>& v, std::size_t n) {
    v.resize(n);
    for (Vec3& e : v) {
      e.x = value<double>();
      e.y = value<double>();
      e.z = value<double>();
    }
  }
  void doubles(std::vector<double>& v, std::size_t n) {
    v.resize(n);
    raw(v.data(), n * sizeof(double));
  }

 private:
  const unsigned char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_checkpoint(const std::string& path, const ParticleSystem& system,
                      std::uint64_t step) {
  Writer w;
  w.raw(kMagic, sizeof(kMagic));
  w.value(kVersion);
  w.value(step);
  w.value(static_cast<std::uint64_t>(system.size()));
  w.value(system.box.lengths.x);
  w.value(system.box.lengths.y);
  w.value(system.box.lengths.z);
  w.vecs(system.positions);
  w.vecs(system.velocities);
  w.vecs(system.forces);
  w.doubles(system.masses);
  w.doubles(system.charges);
  const std::uint32_t crc = crc32(w.bytes().data(), w.bytes().size());
  w.value(crc);

  const std::string tmp = path + ".tmp";
  auto& shim = io::IoShim::instance();
  const int fd = shim.open_for_write(tmp);
  if (fd < 0) {
    throw CheckpointError(CheckpointFault::kIoError,
                          "checkpoint: cannot open " + tmp + " for writing: " +
                              std::strerror(errno));
  }
  // fd is owned from here on: any failure unlinks the temp file so a full
  // disk is not further polluted and older generations stay the newest
  // readable state.
  auto fail = [&](CheckpointFault fault, const std::string& what) {
    const int saved = errno;
    shim.close_fd(fd);
    std::remove(tmp.c_str());
    throw CheckpointError(fault, what + ": " + std::strerror(saved));
  };

  // Write-all loop with EINTR retry.  A zero-progress write (possible under
  // an injected short-write plan colliding with an ENOSPC budget) is treated
  // as out-of-space rather than spinning forever.
  const unsigned char* data = w.bytes().data();
  std::size_t remaining = w.bytes().size();
  int zero_progress = 0;
  while (remaining > 0) {
    const ssize_t n = shim.write_some(fd, data, remaining, tmp);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(errno == ENOSPC ? CheckpointFault::kNoSpace
                           : CheckpointFault::kIoError,
           "checkpoint: write to " + tmp + " failed");
    } else if (n == 0) {
      if (++zero_progress >= 8) {
        errno = ENOSPC;
        fail(CheckpointFault::kNoSpace,
             "checkpoint: write to " + tmp + " made no progress");
      }
    } else {
      zero_progress = 0;
      data += n;
      remaining -= static_cast<std::size_t>(n);
    }
  }

  // Durability, step 1: the temp file's bytes must be on the device before
  // the rename publishes them, or a crash can leave `path` pointing at a
  // hole.  A failed fsync leaves the page cache in an undefined state, so
  // the write is abandoned rather than renamed.
  while (shim.fsync_fd(fd, tmp) != 0) {
    if (errno == EINTR) continue;
    fail(CheckpointFault::kIoError, "checkpoint: fsync of " + tmp + " failed");
  }
  if (shim.close_fd(fd) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointFault::kIoError,
                          "checkpoint: close of " + tmp + " failed: " +
                              std::strerror(errno));
  }
  if (shim.rename_file(tmp, path) != 0) {
    const int saved = errno;
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointFault::kIoError,
                          "checkpoint: cannot rename " + tmp + " to " + path +
                              ": " + std::strerror(saved));
  }
  // Durability, step 2: the rename itself lives in the directory; fsync it
  // so the new name survives a power cut too.
  if (shim.fsync_parent_dir(path) != 0) {
    throw CheckpointError(CheckpointFault::kIoError,
                          "checkpoint: fsync of parent directory of " + path +
                              " failed: " + std::strerror(errno));
  }
  TME_COUNTER_ADD("md/checkpoint/writes", 1);
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointFault::kMissingFile,
                          "checkpoint: cannot open " + path);
  }
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());

  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t)) {
    throw CheckpointError(CheckpointFault::kTruncated,
                          "checkpoint: truncated file");
  }
  const std::size_t payload = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload, sizeof(stored_crc));
  if (crc32(bytes.data(), payload) != stored_crc) {
    throw CheckpointError(CheckpointFault::kCrcMismatch,
                          "checkpoint: CRC mismatch (corrupted file)");
  }

  Reader r(bytes.data(), payload);
  char magic[8];
  r.raw(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(CheckpointFault::kBadMagic,
                          "checkpoint: bad magic (not a TME checkpoint)");
  }
  const auto version = r.value<std::uint32_t>();
  if (version != kVersion) {
    throw CheckpointError(CheckpointFault::kBadVersion,
                          "checkpoint: unsupported version " +
                              std::to_string(version));
  }

  Checkpoint ckpt;
  ckpt.step = r.value<std::uint64_t>();
  const auto declared_n = r.value<std::uint64_t>();
  // Defensive header validation: the declared particle count fixes the exact
  // payload size, so verify it against the file length BEFORE sizing any
  // allocation from it.  A forged or bit-rotted count that happens to carry
  // a matching CRC must fail here, not in a multi-gigabyte resize.
  constexpr std::uint64_t kPerParticleBytes =
      3 * 3 * sizeof(double) + 2 * sizeof(double);  // 3 Vec3 arrays + 2 scalars
  const std::uint64_t header_bytes = sizeof(kMagic) + sizeof(std::uint32_t) +
                                     2 * sizeof(std::uint64_t) +
                                     3 * sizeof(double);
  if (payload < header_bytes) {
    throw CheckpointError(CheckpointFault::kTruncated,
                          "checkpoint: truncated file");
  }
  if (declared_n > (payload - header_bytes) / kPerParticleBytes) {
    throw CheckpointError(
        CheckpointFault::kBadLength,
        "checkpoint: declared particle count " + std::to_string(declared_n) +
            " exceeds file size");
  }
  const std::uint64_t expected = header_bytes + declared_n * kPerParticleBytes;
  if (expected != payload) {
    throw CheckpointError(
        CheckpointFault::kBadLength,
        "checkpoint: payload size " + std::to_string(payload) +
            " does not match declared particle count (expected " +
            std::to_string(expected) + ")");
  }
  // Bounded allocation hook: the restore buffers are the one place this
  // layer sizes memory from external input, so ask the shim before
  // committing.  Under allocator pressure the caller falls back to an older
  // (typically smaller or already-resident) generation instead of dying in
  // a bad_alloc mid-recovery.
  if (!io::IoShim::instance().alloc_allowed(
          static_cast<std::size_t>(declared_n * kPerParticleBytes))) {
    throw CheckpointError(CheckpointFault::kResource,
                          "checkpoint: restore allocation of " +
                              std::to_string(declared_n * kPerParticleBytes) +
                              " bytes refused");
  }
  const auto n = static_cast<std::size_t>(declared_n);
  ckpt.system.box.lengths.x = r.value<double>();
  ckpt.system.box.lengths.y = r.value<double>();
  ckpt.system.box.lengths.z = r.value<double>();
  r.vecs(ckpt.system.positions, n);
  r.vecs(ckpt.system.velocities, n);
  r.vecs(ckpt.system.forces, n);
  r.doubles(ckpt.system.masses, n);
  r.doubles(ckpt.system.charges, n);
  TME_COUNTER_ADD("md/checkpoint/restores", 1);
  return ckpt;
}

const char* to_string(CheckpointFault fault) {
  switch (fault) {
    case CheckpointFault::kMissingFile:
      return "missing-file";
    case CheckpointFault::kTruncated:
      return "truncated";
    case CheckpointFault::kCrcMismatch:
      return "crc-mismatch";
    case CheckpointFault::kBadMagic:
      return "bad-magic";
    case CheckpointFault::kBadVersion:
      return "bad-version";
    case CheckpointFault::kBadLength:
      return "bad-length";
    case CheckpointFault::kIoError:
      return "io-error";
    case CheckpointFault::kNoSpace:
      return "no-space";
    case CheckpointFault::kResource:
      return "resource";
  }
  return "unknown";
}

namespace {

std::string generation_path(const std::string& path, int gen) {
  return gen == 0 ? path : path + "." + std::to_string(gen);
}

}  // namespace

void write_checkpoint_rotating(const std::string& path,
                               const ParticleSystem& system,
                               std::uint64_t step, int keep) {
  if (keep < 1) {
    throw CheckpointError(CheckpointFault::kIoError,
                          "checkpoint: keep must be >= 1");
  }
  // Shift older generations out of the way, oldest first.  A missing
  // generation is fine (rename just fails); a crash mid-shift leaves every
  // file either at its old or its new slot, all still self-validating.
  for (int gen = keep - 1; gen >= 1; --gen) {
    std::rename(generation_path(path, gen - 1).c_str(),
                generation_path(path, gen).c_str());
  }
  write_checkpoint(path, system, step);
}

Checkpoint read_latest_checkpoint(const std::string& path, int keep,
                                  std::string* used) {
  std::optional<CheckpointError> newest_error;
  for (int gen = 0; gen < std::max(keep, 1); ++gen) {
    const std::string candidate = generation_path(path, gen);
    try {
      Checkpoint ckpt = read_checkpoint(candidate);
      if (used != nullptr) *used = candidate;
      return ckpt;
    } catch (const CheckpointError& e) {
      TME_COUNTER_ADD("md/checkpoint/fallbacks", 1);
      if (!newest_error) newest_error = e;
    }
  }
  throw *newest_error;
}

}  // namespace tme
