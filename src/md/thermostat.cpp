#include "md/thermostat.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tme {

double apply_berendsen(ParticleSystem& system, const BerendsenParams& params,
                       double dt) {
  if (params.dof == 0) throw std::invalid_argument("apply_berendsen: dof required");
  if (params.time_constant <= 0.0 || dt <= 0.0) {
    throw std::invalid_argument("apply_berendsen: bad time constants");
  }
  const double t_now = std::max(system.temperature(params.dof), 1e-6);
  const double lambda2 =
      1.0 + dt / params.time_constant * (params.target_temperature / t_now - 1.0);
  const double lambda = std::sqrt(std::max(lambda2, 0.0));
  for (auto& v : system.velocities) v *= lambda;
  return lambda;
}

double rescale_to_temperature(ParticleSystem& system, double target,
                              std::size_t dof) {
  const double t_now = std::max(system.temperature(dof), 1e-6);
  const double lambda = std::sqrt(target / t_now);
  for (auto& v : system.velocities) v *= lambda;
  return lambda;
}

}  // namespace tme
