// Velocity-Verlet NVE integrator with holonomic constraints — the paper's
// integration scheme (Sec. V.A: three phases, constraints handled by the GP
// cores; the evaluation uses 1 fs steps with SETTLE-restrained TIP3P).
#pragma once

#include <functional>
#include <vector>

#include "md/forcefield.hpp"
#include "md/settle.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"

namespace tme {

struct IntegratorParams {
  double dt = 0.001;  // ps (1 fs)
  ConstraintMethod constraint_method = ConstraintMethod::kSettle;
};

struct StepReport {
  EnergyReport energies;
  double kinetic = 0.0;
  double total() const { return energies.potential() + kinetic; }
};

class VelocityVerlet {
 public:
  VelocityVerlet(const Topology& topology, const ParticleSystem& system,
                 IntegratorParams params);

  // One NVE step.  The system must hold forces consistent with its current
  // positions (call prime() once before the first step).
  StepReport step(ParticleSystem& system, const Topology& topology,
                  const ForceField& ff) const;

  // Evaluates forces for the initial configuration (and constrains
  // velocities so the reported kinetic energy is consistent).
  StepReport prime(ParticleSystem& system, const Topology& topology,
                   const ForceField& ff) const;

  const IntegratorParams& params() const { return params_; }
  const WaterConstraints& constraints() const { return constraints_; }

 private:
  IntegratorParams params_;
  WaterConstraints constraints_;
};

}  // namespace tme
