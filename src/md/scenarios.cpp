#include "md/scenarios.hpp"

#include <utility>

#include "util/rng.hpp"

namespace tme {

namespace {

Scenario from_water_box(std::string name, WaterBox wb, GridDims grid) {
  Scenario s;
  s.name = std::move(name);
  s.box = wb.system.box;
  s.positions = wb.system.positions;
  s.charges = wb.system.charges;
  s.grid = grid;
  s.md = std::move(wb);
  return s;
}

}  // namespace

double Scenario::total_charge() const {
  double q = 0.0;
  for (const double qi : charges) q += qi;
  return q;
}

obs::JsonValue Scenario::describe() const {
  obs::JsonValue d = obs::JsonValue::make_object();
  auto& obj = d.as_object();
  obj["scenario"] = obs::JsonValue::make_string(name);
  obj["n_atoms"] = obs::JsonValue::make_number(static_cast<double>(positions.size()));
  obj["box_x"] = obs::JsonValue::make_number(box.lengths.x);
  obj["box_y"] = obs::JsonValue::make_number(box.lengths.y);
  obj["box_z"] = obs::JsonValue::make_number(box.lengths.z);
  obj["total_charge"] = obs::JsonValue::make_number(total_charge());
  obj["has_md"] = obs::JsonValue::make_bool(md.has_value());
  return d;
}

Scenario scenario_tip3p_water(std::size_t molecules, std::uint64_t seed) {
  WaterBoxSpec spec;
  spec.molecules = molecules;
  spec.seed = seed;
  return from_water_box("tip3p_water", build_water_box(spec), {16, 16, 16});
}

Scenario scenario_nacl_electrolyte(std::size_t molecules, std::size_t pairs,
                                   std::uint64_t seed) {
  WaterBoxSpec spec;
  spec.molecules = molecules;
  spec.seed = seed;
  WaterBox wb = build_water_box(spec);
  add_ion_pairs(wb, pairs, seed + 1);
  return from_water_box("nacl_electrolyte", std::move(wb), {16, 16, 16});
}

Scenario scenario_charged_solute(std::size_t molecules, double solute_charge,
                                 std::uint64_t seed) {
  WaterBoxSpec spec;
  spec.molecules = molecules;
  spec.seed = seed;
  const WaterBox wb = build_water_box(spec);
  Scenario s;
  s.name = "charged_solute";
  s.box = wb.system.box;
  s.positions = wb.system.positions;
  s.charges = wb.system.charges;
  // Collapse molecule 0 (atoms 0..2: O, H, H) to a bare point charge at the
  // oxygen site; the hydrogens stay in place with zero charge, so the atom
  // count is unchanged but the cell is no longer neutral.
  s.charges[0] = solute_charge;
  s.charges[1] = 0.0;
  s.charges[2] = 0.0;
  s.grid = {16, 16, 16};
  return s;
}

Scenario scenario_anisotropic_water(std::size_t molecules, std::uint64_t seed) {
  WaterBoxSpec spec;
  spec.molecules = molecules;
  spec.seed = seed;
  const WaterBox wb = build_water_box(spec);
  Scenario s;
  s.name = "anisotropic_water";
  s.box = wb.system.box;
  const double lz = s.box.lengths.z;
  s.box.lengths.z = 2.0 * lz;
  s.positions = wb.system.positions;
  s.charges = wb.system.charges;
  s.positions.reserve(2 * wb.system.positions.size());
  s.charges.reserve(2 * wb.system.charges.size());
  for (std::size_t i = 0; i < wb.system.positions.size(); ++i) {
    Vec3 p = wb.system.positions[i];
    p.z += lz;
    s.positions.push_back(p);
    s.charges.push_back(wb.system.charges[i]);
  }
  s.grid = {16, 16, 32};
  return s;
}

Scenario scenario_random_gas(std::size_t atoms, double box_length,
                             std::uint64_t seed) {
  Scenario s;
  s.name = "random_gas_n" + std::to_string(atoms);
  s.box.lengths = {box_length, box_length, box_length};
  Rng rng(seed);
  s.positions.resize(atoms);
  s.charges.resize(atoms);
  double total = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    s.positions[i] = {rng.uniform(0.0, box_length),
                      rng.uniform(0.0, box_length),
                      rng.uniform(0.0, box_length)};
    s.charges[i] = rng.uniform(-1.0, 1.0);
    total += s.charges[i];
  }
  for (double& q : s.charges) q -= total / static_cast<double>(atoms);
  s.grid = {16, 16, 16};
  return s;
}

}  // namespace tme
