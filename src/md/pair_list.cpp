#include "md/pair_list.hpp"

#include <cmath>
#include <stdexcept>

#include "ewald/splitting.hpp"
#include "md/cell_list.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "util/constants.hpp"

namespace tme {

PairList::PairList(double cutoff, double buffer) : cutoff_(cutoff), buffer_(buffer) {
  if (cutoff <= 0.0 || buffer < 0.0) {
    throw std::invalid_argument("PairList: bad cutoff/buffer");
  }
}

bool PairList::update(const Box& box, std::span<const Vec3> positions,
                      const Topology& topology) {
  bool stale = reference_positions_.size() != positions.size();
  if (!stale) {
    const double limit2 = 0.25 * buffer_ * buffer_;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (norm2(box.min_image_disp(positions[i], reference_positions_[i])) >
          limit2) {
        stale = true;
        break;
      }
    }
  }
  if (!stale) return false;

  pairs_.clear();
  const double search = cutoff_ + buffer_;
  const CellList cells(box, positions, search);
  cells.for_each_pair(box, positions, search, [&](std::size_t i, std::size_t j) {
    if (!topology.excluded(i, j)) pairs_.emplace_back(i, j);
  });
  reference_positions_.assign(positions.begin(), positions.end());
  ++rebuilds_;
  return true;
}

ShortRangeResult compute_short_range_with_list(ParticleSystem& system,
                                               const Topology& topology,
                                               const ShortRangeParams& params,
                                               PairList& list) {
  if (list.cutoff() != params.cutoff) {
    throw std::invalid_argument(
        "compute_short_range_with_list: cutoff mismatch with the pair list");
  }
  list.update(system.box, system.positions, topology);

  ShortRangeResult out;
  const double cutoff2 = params.cutoff * params.cutoff;
  const auto& lj = topology.lj();
  double lj_shift_6 = 0.0, lj_shift_12 = 0.0;
  if (params.shift_lj) {
    const double inv_rc6 = 1.0 / (cutoff2 * cutoff2 * cutoff2);
    lj_shift_6 = inv_rc6;
    lj_shift_12 = inv_rc6 * inv_rc6;
  }

  for (const auto& [i, j] : list.pairs()) {
    const Vec3 d = system.box.min_image_disp(system.positions[i],
                                             system.positions[j]);
    const double r2 = norm2(d);
    if (r2 >= cutoff2 || r2 == 0.0) continue;
    ++out.pair_count;
    double f_over_r = 0.0;

    const double qq = constants::kCoulomb * system.charges[i] * system.charges[j];
    if (qq != 0.0) {
      const double r = std::sqrt(r2);
      out.energy_coulomb += qq * g_short(r, params.alpha);
      f_over_r += -qq * g_short_derivative(r, params.alpha) / r;
    }
    const double eps = std::sqrt(lj[i].epsilon * lj[j].epsilon);
    if (eps > 0.0) {
      const double sigma = 0.5 * (lj[i].sigma + lj[j].sigma);
      const double s2 = sigma * sigma / r2;
      const double s6 = s2 * s2 * s2;
      const double s12 = s6 * s6;
      const double sig6 = sigma * sigma * sigma * sigma * sigma * sigma;
      out.energy_lj +=
          4.0 * eps * (s12 - s6 - (lj_shift_12 * sig6 * sig6 - lj_shift_6 * sig6));
      f_over_r += 24.0 * eps * (2.0 * s12 - s6) / r2;
    }
    const Vec3 fij = f_over_r * d;
    system.forces[i] += fij;
    system.forces[j] -= fij;
  }
  return out;
}

}  // namespace tme
