// Parallel short-range engine — the software counterpart of MDGRAPE-4A's 64
// nonbond force pipelines (paper Sec. II).
//
// Where the serial reference loop (md/short_range.hpp) walks the cell list
// on one thread and evaluates erfc/sqrt per pair, this engine mirrors what
// the hardware does per step:
//  - particles are packed into cell-sorted SoA buffers (x/y/z/q/type), the
//    analogue of the 64-atom cell blocks staged in the pipelines' local
//    memories;
//  - per-type Lennard-Jones parameters are precombined into a flat mixing
//    table (4εσ⁶, 4εσ¹², cutoff shift) instead of re-deriving
//    Lorentz–Berthelot and σ⁶ powers inside the pair loop;
//  - the erfc Coulomb kernel can run through a segmented-polynomial table in
//    r² (ewald/force_table.hpp), the pipelines' table-lookup function
//    evaluator, or analytically (CoulombKernel in the params);
//  - filtered pairs are buffered into SoA batches and evaluated W at a time
//    by the portable SIMD kernel (md/short_range_kernels.hpp); the W = 1
//    scalar twin (TME_SIMD=scalar) is bitwise identical;
//  - cells are traversed in parallel batches with thread-private
//    force/energy/virial-style accumulators, reduced in fixed batch order so
//    a given pool size always reproduces the same bits (different pool sizes
//    agree to floating-point reassociation, ~1e-15 relative).
#pragma once

#include <memory>

#include "ewald/force_table.hpp"
#include "md/short_range.hpp"
#include "md/system.hpp"
#include "md/topology.hpp"
#include "util/simd.hpp"

namespace tme {

class ThreadPool;

class ShortRangeEngine {
 public:
  // Builds the Coulomb kernel table once (when params.kernel is kTabulated);
  // the per-step buffers are rebuilt on every compute() call.
  explicit ShortRangeEngine(const ShortRangeParams& params);

  const ShortRangeParams& params() const { return params_; }

  // Non-null iff the engine runs the tabulated kernel.
  const ForceTable* force_table() const { return table_.get(); }

  // Which pair-kernel instantiation this engine runs (resolved once at
  // construction from params.simd / the TME_SIMD environment knob).  Scalar
  // and native produce bitwise-identical results for a given build.
  simd::Mode simd_mode() const { return mode_; }

  // Accumulates forces into system.forces (does not clear them), exactly
  // like compute_short_range.  `pool` selects the worker pool (nullptr = the
  // process-wide pool); results for a given pool size are deterministic.
  ShortRangeResult compute(ParticleSystem& system, const Topology& topology,
                           ThreadPool* pool = nullptr) const;

 private:
  ShortRangeParams params_;
  std::unique_ptr<ForceTable> table_;
  simd::Mode mode_ = simd::Mode::kNative;
};

}  // namespace tme
