#include "md/guardrail.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <string>

#include "md/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace tme {

const char* to_string(GuardrailPolicy policy) {
  switch (policy) {
    case GuardrailPolicy::kWarn: return "warn";
    case GuardrailPolicy::kRecompute: return "recompute";
    case GuardrailPolicy::kRecover: return "recover";
    case GuardrailPolicy::kAbort: return "abort";
  }
  return "?";
}

GuardrailPolicy guardrail_policy_from_env(GuardrailPolicy fallback) {
  // Order mirrors the enum so the chosen index casts straight back.
  static const std::vector<std::string> ladder = {"warn", "recompute",
                                                  "recover", "abort"};
  const std::size_t index = env::choice_or("TME_GUARDRAIL", ladder,
                                           static_cast<std::size_t>(fallback));
  return static_cast<GuardrailPolicy>(index);
}

namespace {

// Count of non-finite components in an array of vectors.
std::size_t non_finite(const std::vector<Vec3>& vs) {
  std::size_t bad = 0;
  for (const Vec3& v : vs) {
    if (!std::isfinite(v.x) || !std::isfinite(v.y) || !std::isfinite(v.z)) ++bad;
  }
  return bad;
}

}  // namespace

std::vector<GuardrailViolation> Guardrail::check(const ParticleSystem& system,
                                                 const StepReport& report,
                                                 std::uint64_t step) {
  std::vector<GuardrailViolation> found;
  auto flag = [&](std::string what) {
    log_structured(LogLevel::kWarn, "guardrail_violation",
                   {{"step", std::to_string(step)}, {"what", what}});
    TME_TRACE_INSTANT_D("guardrail violation",
                        "step " + std::to_string(step) + ": " + what);
    found.push_back({step, std::move(what)});
  };

  if (const std::size_t bad = non_finite(system.positions); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite positions");
  }
  if (const std::size_t bad = non_finite(system.velocities); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite velocities");
  }
  if (const std::size_t bad = non_finite(system.forces); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite forces");
  }

  double max_f = 0.0;
  for (const Vec3& f : system.forces) {
    for (std::size_t k = 0; k < 3; ++k) {
      const double a = std::abs(f[k]);
      if (a > max_f) max_f = a;
    }
  }
  if (std::isfinite(max_f) && max_f > config_.max_force) {
    flag("force blow-up: max |component| " + std::to_string(max_f) + " > " +
         std::to_string(config_.max_force));
  }

  if (config_.check_fixed_overflow) {
    std::size_t overflowed = 0;
    for (const Vec3& f : system.forces) {
      for (std::size_t k = 0; k < 3; ++k) {
        if (!fits(f[k], config_.fixed_format)) ++overflowed;
      }
    }
    if (overflowed > 0) {
      flag(std::to_string(overflowed) + " force components saturate Q" +
           std::to_string(config_.fixed_format.total_bits - config_.fixed_format.frac_bits) +
           "." + std::to_string(config_.fixed_format.frac_bits));
    }
  }

  const double total = report.total();
  if (!std::isfinite(total)) {
    flag("non-finite total energy");
  } else if (!reference_energy_.has_value()) {
    reference_energy_ = total;
  } else {
    const double ref = *reference_energy_;
    const double scale = std::max(std::abs(ref), config_.energy_floor);
    if (std::abs(total - ref) > config_.energy_drift_tol * scale) {
      flag("energy drift " + std::to_string(total - ref) + " kJ/mol exceeds " +
           std::to_string(config_.energy_drift_tol) + " x " + std::to_string(scale));
    }
  }

  TME_COUNTER_ADD("md/guardrail/violations", found.size());
  violations_.insert(violations_.end(), found.begin(), found.end());
  return found;
}

GuardedRunResult run_guarded(ParticleSystem& system, const Topology& topology,
                             const ForceField& ff, const VelocityVerlet& integrator,
                             std::uint64_t steps, const GuardedRunParams& params) {
  Guardrail guard(params.guardrail);
  GuardedRunResult result;
  const bool checkpointing = !params.checkpoint_path.empty();
  const bool recompute_rung =
      params.guardrail.policy == GuardrailPolicy::kRecompute;

  // Wall-clock watchdog: petted once per completed step; the monitor thread
  // dumps where the run was if a step stalls.
  std::shared_ptr<std::atomic<std::uint64_t>> watched_step;
  std::unique_ptr<Watchdog> watchdog;
  if (params.watchdog_timeout_s > 0.0) {
    watched_step = std::make_shared<std::atomic<std::uint64_t>>(0);
    watchdog = std::make_unique<Watchdog>(
        params.watchdog_timeout_s, [watched_step, &params] {
          log_structured(
              LogLevel::kError, "guardrail_watchdog_fired",
              {{"timeout_s", std::to_string(params.watchdog_timeout_s)},
               {"step", std::to_string(watched_step->load() + 1)}});
          TME_TRACE_INSTANT_D("watchdog fired",
                              "no progress while computing step " +
                                  std::to_string(watched_step->load() + 1));
        });
  }
  auto finish = [&](GuardedRunResult& r) -> GuardedRunResult& {
    if (watchdog) r.watchdog_fired = watchdog->fired();
    return r;
  };

  result.last_report = integrator.prime(system, topology, ff);
  if (checkpointing) {
    write_checkpoint(params.checkpoint_path, system, 0);
  }

  // Escalation: under the recompute rung a persistent or over-budget
  // violation falls through to the checkpoint rollback, which in turn falls
  // through to abort; set by the switch below to enter the kRecover arm.
  while (result.steps_completed < steps) {
    const std::uint64_t step = result.steps_completed + 1;
    // The pre-step image the recompute rung restores from: in memory, step
    // local — no checkpoint I/O and no completed steps lost.
    ParticleSystem prestep;
    if (recompute_rung) prestep = system;
    if (params.fault_hook) params.fault_hook(step, system);
    StepReport report = integrator.step(system, topology, ff);
    std::vector<GuardrailViolation> bad = guard.check(system, report, step);

    if (!bad.empty() && recompute_rung) {
      result.violation_count += bad.size();
      // Localized retry: restore the in-memory pre-step state and re-run
      // just this step.  The fault hook models a transient upset and is not
      // replayed, so a retry of an SDC-corrupted step is clean by
      // construction and bitwise-identical to the fault-free trajectory.
      while (!bad.empty() && result.step_recomputes < params.max_step_recomputes) {
        ++result.step_recomputes;
        TME_COUNTER_ADD("md/guardrail/step_recomputes", 1);
        log_structured(
            LogLevel::kWarn, "guardrail_step_recompute",
            {{"step", std::to_string(step)},
             {"retry", std::to_string(result.step_recomputes)},
             {"max", std::to_string(params.max_step_recomputes)}});
        TME_TRACE_INSTANT_D("guardrail recompute",
                            "step " + std::to_string(step) + " retry " +
                                std::to_string(result.step_recomputes));
        system = prestep;
        report = integrator.step(system, topology, ff);
        bad = guard.check(system, report, step);
        if (!bad.empty()) result.violation_count += bad.size();
      }
      if (!bad.empty()) {
        log_warn("guardrail: step ", step,
                 " still violating after localized recompute; escalating to "
                 "checkpoint rollback");
      }
    } else if (!bad.empty()) {
      result.violation_count += bad.size();
    }

    if (bad.empty()) {
      result.steps_completed = step;
      result.last_report = report;
      if (watchdog) {
        watched_step->store(step);
        watchdog->pet();
      }
      if (checkpointing && step % params.checkpoint_interval == 0) {
        write_checkpoint(params.checkpoint_path, system, step);
      }
      continue;
    }

    switch (params.guardrail.policy) {
      case GuardrailPolicy::kWarn:
        // Logged in check(); keep going with the (possibly damaged) state.
        result.steps_completed = step;
        result.last_report = report;
        break;
      case GuardrailPolicy::kRecompute:
      case GuardrailPolicy::kRecover: {
        if (!checkpointing || result.recoveries >= params.max_recoveries) {
          log_error("guardrail: cannot recover (",
                    checkpointing ? "recovery limit reached" : "no checkpoint path",
                    "); aborting at step ", step);
          TME_COUNTER_ADD("md/guardrail/aborts", 1);
          TME_TRACE_INSTANT_D("guardrail abort",
                              "unrecoverable at step " + std::to_string(step));
          result.aborted = true;
          return finish(result);
        }
        const Checkpoint ckpt = read_checkpoint(params.checkpoint_path);
        system = ckpt.system;
        result.steps_completed = ckpt.step;
        ++result.recoveries;
        guard.reset_energy_reference();
        log_structured(LogLevel::kWarn, "guardrail_rollback",
                       {{"failed_step", std::to_string(step)},
                        {"checkpoint_step", std::to_string(ckpt.step)}});
        TME_TRACE_INSTANT_D("guardrail rollback",
                            "to checkpoint at step " +
                                std::to_string(ckpt.step));
        TME_COUNTER_ADD("md/guardrail/recoveries", 1);
        break;
      }
      case GuardrailPolicy::kAbort:
        log_structured(LogLevel::kError, "guardrail_abort",
                       {{"step", std::to_string(step)}});
        TME_COUNTER_ADD("md/guardrail/aborts", 1);
        TME_TRACE_INSTANT_D("guardrail abort",
                            "policy abort at step " + std::to_string(step));
        result.aborted = true;
        return finish(result);
    }
  }
  return finish(result);
}

}  // namespace tme
