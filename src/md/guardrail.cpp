#include "md/guardrail.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "md/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace tme {

const char* to_string(GuardrailPolicy policy) {
  switch (policy) {
    case GuardrailPolicy::kWarn: return "warn";
    case GuardrailPolicy::kRecover: return "recover";
    case GuardrailPolicy::kAbort: return "abort";
  }
  return "?";
}

GuardrailPolicy guardrail_policy_from_env(GuardrailPolicy fallback) {
  const char* text = std::getenv("TME_GUARDRAIL");
  if (text == nullptr) return fallback;
  const std::string value(text);
  if (value == "warn") return GuardrailPolicy::kWarn;
  if (value == "recover") return GuardrailPolicy::kRecover;
  if (value == "abort") return GuardrailPolicy::kAbort;
  log_warn("TME_GUARDRAIL='", value, "' is not warn|recover|abort; using ",
           to_string(fallback));
  return fallback;
}

namespace {

// Count of non-finite components in an array of vectors.
std::size_t non_finite(const std::vector<Vec3>& vs) {
  std::size_t bad = 0;
  for (const Vec3& v : vs) {
    if (!std::isfinite(v.x) || !std::isfinite(v.y) || !std::isfinite(v.z)) ++bad;
  }
  return bad;
}

}  // namespace

std::vector<GuardrailViolation> Guardrail::check(const ParticleSystem& system,
                                                 const StepReport& report,
                                                 std::uint64_t step) {
  std::vector<GuardrailViolation> found;
  auto flag = [&](std::string what) {
    log_warn("guardrail: step ", step, ": ", what);
    found.push_back({step, std::move(what)});
  };

  if (const std::size_t bad = non_finite(system.positions); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite positions");
  }
  if (const std::size_t bad = non_finite(system.velocities); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite velocities");
  }
  if (const std::size_t bad = non_finite(system.forces); bad > 0) {
    flag(std::to_string(bad) + " particles with non-finite forces");
  }

  double max_f = 0.0;
  for (const Vec3& f : system.forces) {
    for (std::size_t k = 0; k < 3; ++k) {
      const double a = std::abs(f[k]);
      if (a > max_f) max_f = a;
    }
  }
  if (std::isfinite(max_f) && max_f > config_.max_force) {
    flag("force blow-up: max |component| " + std::to_string(max_f) + " > " +
         std::to_string(config_.max_force));
  }

  if (config_.check_fixed_overflow) {
    std::size_t overflowed = 0;
    for (const Vec3& f : system.forces) {
      for (std::size_t k = 0; k < 3; ++k) {
        if (!fits(f[k], config_.fixed_format)) ++overflowed;
      }
    }
    if (overflowed > 0) {
      flag(std::to_string(overflowed) + " force components saturate Q" +
           std::to_string(config_.fixed_format.total_bits - config_.fixed_format.frac_bits) +
           "." + std::to_string(config_.fixed_format.frac_bits));
    }
  }

  const double total = report.total();
  if (!std::isfinite(total)) {
    flag("non-finite total energy");
  } else if (!reference_energy_.has_value()) {
    reference_energy_ = total;
  } else {
    const double ref = *reference_energy_;
    const double scale = std::max(std::abs(ref), config_.energy_floor);
    if (std::abs(total - ref) > config_.energy_drift_tol * scale) {
      flag("energy drift " + std::to_string(total - ref) + " kJ/mol exceeds " +
           std::to_string(config_.energy_drift_tol) + " x " + std::to_string(scale));
    }
  }

  TME_COUNTER_ADD("md/guardrail/violations", found.size());
  violations_.insert(violations_.end(), found.begin(), found.end());
  return found;
}

GuardedRunResult run_guarded(ParticleSystem& system, const Topology& topology,
                             const ForceField& ff, const VelocityVerlet& integrator,
                             std::uint64_t steps, const GuardedRunParams& params) {
  Guardrail guard(params.guardrail);
  GuardedRunResult result;
  const bool checkpointing = !params.checkpoint_path.empty();

  result.last_report = integrator.prime(system, topology, ff);
  if (checkpointing) {
    write_checkpoint(params.checkpoint_path, system, 0);
  }

  while (result.steps_completed < steps) {
    const std::uint64_t step = result.steps_completed + 1;
    if (params.fault_hook) params.fault_hook(step, system);
    const StepReport report = integrator.step(system, topology, ff);
    const std::vector<GuardrailViolation> bad = guard.check(system, report, step);

    if (bad.empty()) {
      result.steps_completed = step;
      result.last_report = report;
      if (checkpointing && step % params.checkpoint_interval == 0) {
        write_checkpoint(params.checkpoint_path, system, step);
      }
      continue;
    }

    result.violation_count += bad.size();
    switch (params.guardrail.policy) {
      case GuardrailPolicy::kWarn:
        // Logged in check(); keep going with the (possibly damaged) state.
        result.steps_completed = step;
        result.last_report = report;
        break;
      case GuardrailPolicy::kRecover: {
        if (!checkpointing || result.recoveries >= params.max_recoveries) {
          log_error("guardrail: cannot recover (",
                    checkpointing ? "recovery limit reached" : "no checkpoint path",
                    "); aborting at step ", step);
          TME_COUNTER_ADD("md/guardrail/aborts", 1);
          result.aborted = true;
          return result;
        }
        const Checkpoint ckpt = read_checkpoint(params.checkpoint_path);
        system = ckpt.system;
        result.steps_completed = ckpt.step;
        ++result.recoveries;
        guard.reset_energy_reference();
        log_warn("guardrail: rolled back to checkpoint at step ", ckpt.step);
        TME_COUNTER_ADD("md/guardrail/recoveries", 1);
        break;
      }
      case GuardrailPolicy::kAbort:
        log_error("guardrail: aborting at step ", step);
        TME_COUNTER_ADD("md/guardrail/aborts", 1);
        result.aborted = true;
        return result;
    }
  }
  return result;
}

}  // namespace tme
