// Linked-cell neighbour search for cutoff interactions.
//
// This is the software analogue of MDGRAPE-4A's spatial cell decomposition
// (64-atom cells managed by the global memory, paper Sec. II): atoms are
// binned into cells no smaller than the cutoff, and each pair search scans
// the 27-cell neighbourhood.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace tme {

class CellList {
 public:
  // Builds the cell decomposition for the given positions.  `cutoff` sets
  // the minimum cell edge; each box axis gets floor(L / cutoff) cells
  // (minimum 1).
  CellList(const Box& box, std::span<const Vec3> positions, double cutoff);

  std::size_t cell_count() const { return cells_x_ * cells_y_ * cells_z_; }
  std::size_t cells_x() const { return cells_x_; }
  std::size_t cells_y() const { return cells_y_; }
  std::size_t cells_z() const { return cells_z_; }

  // Calls fn(i, j) exactly once for every unordered pair with minimum-image
  // distance below the cutoff.  Pairs are found via the half-neighbourhood
  // stencil, so no pair is visited twice.
  template <typename Fn>
  void for_each_pair(const Box& box, std::span<const Vec3> positions,
                     double cutoff, Fn&& fn) const {
    const double cutoff2 = cutoff * cutoff;
    for (std::size_t c = 0; c < cell_count(); ++c) {
      // Pairs within the cell.
      for (std::size_t a = cell_start_[c]; a < cell_start_[c + 1]; ++a) {
        for (std::size_t b = a + 1; b < cell_start_[c + 1]; ++b) {
          const std::size_t i = order_[a], j = order_[b];
          if (norm2(box.min_image_disp(positions[i], positions[j])) < cutoff2) {
            fn(i, j);
          }
        }
      }
      // Pairs with the 13 forward neighbour cells.
      for (const std::size_t n : half_stencil(c)) {
        for (std::size_t a = cell_start_[c]; a < cell_start_[c + 1]; ++a) {
          for (std::size_t b = cell_start_[n]; b < cell_start_[n + 1]; ++b) {
            const std::size_t i = order_[a], j = order_[b];
            if (norm2(box.min_image_disp(positions[i], positions[j])) < cutoff2) {
              fn(i, j);
            }
          }
        }
      }
    }
  }

  // Atoms in cell c (by index into the original arrays).
  std::span<const std::size_t> cell_atoms(std::size_t c) const {
    return {order_.data() + cell_start_[c], cell_start_[c + 1] - cell_start_[c]};
  }

  // The 13 forward neighbours of cell c (periodic).  When the grid is
  // smaller than 3 cells along an axis, duplicate neighbours are removed so
  // pairs are still visited exactly once.
  std::vector<std::size_t> half_stencil(std::size_t c) const;

 private:
  std::size_t cell_index(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return (iz * cells_y_ + iy) * cells_x_ + ix;
  }

  std::size_t cells_x_ = 1, cells_y_ = 1, cells_z_ = 1;
  std::vector<std::size_t> cell_start_;  // CSR offsets, size cell_count()+1
  std::vector<std::size_t> order_;       // atom indices grouped by cell
};

}  // namespace tme
