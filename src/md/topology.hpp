// Molecular topology: bonded terms, exclusions, rigid water groups.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tme {

struct Bond {
  std::size_t i = 0;
  std::size_t j = 0;
  double length = 0.0;          // equilibrium, nm
  double force_constant = 0.0;  // kJ mol^-1 nm^-2
};

struct Angle {
  std::size_t i = 0;  // outer
  std::size_t j = 0;  // centre
  std::size_t k = 0;  // outer
  double theta0 = 0.0;          // equilibrium, radians
  double force_constant = 0.0;  // kJ mol^-1 rad^-2
};

// Periodic (proper) torsion: V = k (1 + cos(n phi - phi0)).
struct Dihedral {
  std::size_t i = 0;  // chain i - j - k - l
  std::size_t j = 0;
  std::size_t k = 0;
  std::size_t l = 0;
  int multiplicity = 1;         // n
  double phi0 = 0.0;            // radians
  double force_constant = 0.0;  // kJ/mol
};

// Rigid 3-site water (O, H1, H2) handled by SETTLE.
struct RigidWater {
  std::size_t o = 0;
  std::size_t h1 = 0;
  std::size_t h2 = 0;
};

// Per-atom Lennard-Jones parameters (geometric/Lorentz–Berthelot combined at
// evaluation time).
struct LjParams {
  double sigma = 0.0;    // nm
  double epsilon = 0.0;  // kJ/mol
};

class Topology {
 public:
  void add_bond(const Bond& b) { bonds_.push_back(b); }
  void add_angle(const Angle& a) { angles_.push_back(a); }
  void add_dihedral(const Dihedral& d) { dihedrals_.push_back(d); }
  void add_rigid_water(const RigidWater& w);
  void add_exclusion(std::size_t i, std::size_t j);

  const std::vector<Bond>& bonds() const { return bonds_; }
  const std::vector<Angle>& angles() const { return angles_; }
  const std::vector<Dihedral>& dihedrals() const { return dihedrals_; }
  const std::vector<RigidWater>& rigid_waters() const { return rigid_waters_; }
  const std::vector<std::pair<std::size_t, std::size_t>>& exclusions() const {
    return exclusions_;
  }

  std::vector<LjParams>& lj() { return lj_; }
  const std::vector<LjParams>& lj() const { return lj_; }

  // Derive 1-2 and 1-3 exclusions from the bond/angle lists (idempotent:
  // duplicates are removed).
  void build_exclusions_from_bonded();

  // Fast membership test; call finalize() after all exclusions are added.
  void finalize(std::size_t n_atoms);
  bool excluded(std::size_t i, std::size_t j) const;

  // Number of constrained degrees of freedom (3 per rigid water).
  std::size_t constraint_count() const { return 3 * rigid_waters_.size(); }

 private:
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Dihedral> dihedrals_;
  std::vector<RigidWater> rigid_waters_;
  std::vector<std::pair<std::size_t, std::size_t>> exclusions_;
  std::vector<LjParams> lj_;
  // CSR-style adjacency for excluded() lookups.
  std::vector<std::size_t> excl_offsets_;
  std::vector<std::size_t> excl_neighbours_;
};

}  // namespace tme
