#include "md/short_range_kernels.hpp"

#include "ewald/splitting.hpp"

namespace tme {

void PairBatch::clear() {
  dx.clear();
  dy.clear();
  dz.clear();
  r2.clear();
  qq.clear();
  c6.clear();
  c12.clear();
  e_shift.clear();
  ia.clear();
  ib.clear();
  count_ = 0;
  padded_ = 0;
}

void PairBatch::reserve(std::size_t n) {
  dx.reserve(n);
  dy.reserve(n);
  dz.reserve(n);
  r2.reserve(n);
  qq.reserve(n);
  c6.reserve(n);
  c12.reserve(n);
  e_shift.reserve(n);
  ia.reserve(n);
  ib.reserve(n);
}

void PairBatch::finalize(int width) {
  const std::size_t w = static_cast<std::size_t>(width);
  padded_ = ((count_ + w - 1) / w) * w;
  // Benign pad pairs: r2 = 1 keeps divisions and the table's segment clamp
  // well-defined; zero charge/LJ parameters make every pad output exactly 0.
  r2.resize(padded_, 1.0);
  qq.resize(padded_, 0.0);
  c6.resize(padded_, 0.0);
  c12.resize(padded_, 0.0);
  e_shift.resize(padded_, 0.0);
  e_coul.assign(padded_, 0.0);
  e_lj.assign(padded_, 0.0);
  f_over_r.assign(padded_, 0.0);
}

namespace {

template <int W>
void eval_impl(PairBatch& b, const PairKernelConfig& cfg) {
  using V = simd::vec<double, W>;
  const std::size_t np = b.e_coul.size();  // padded pair count

  // --- Coulomb: f_over_r and e_coul first (the LJ pass accumulates on top,
  // matching the serial kernel's per-pair order coulomb-then-LJ).
  if (cfg.table != nullptr) {
    const ForceTable& table = *cfg.table;
    const double* coeff = table.coeff();
    const std::size_t segments = table.segments();
    const V s_min = V::broadcast(table.s_min());
    const V inv_ds = V::broadcast(table.inv_ds());
    for (std::size_t i = 0; i < np; i += W) {
      const V r2v = V::load(&b.r2[i]);
      const V u = (r2v - s_min) * inv_ds;
      // Per-lane segment index and local coordinate — identical to the
      // scalar ForceTable::lookup truncation and round-off clamp.
      alignas(64) double u_arr[W];
      alignas(64) double t_arr[W];
      alignas(64) std::int64_t idx[W];
      u.store(u_arr);
      for (int l = 0; l < W; ++l) {
        std::size_t k = static_cast<std::size_t>(u_arr[l]);
        if (k >= segments) k = segments - 1;
        t_arr[l] = u_arr[l] - static_cast<double>(k);
        idx[l] = static_cast<std::int64_t>(8 * k);
      }
      const V t = V::load(t_arr);
      const V c0 = V::gather(coeff + 0, idx);
      const V c1 = V::gather(coeff + 1, idx);
      const V c2 = V::gather(coeff + 2, idx);
      const V c3 = V::gather(coeff + 3, idx);
      const V c4 = V::gather(coeff + 4, idx);
      const V c5 = V::gather(coeff + 5, idx);
      const V c6 = V::gather(coeff + 6, idx);
      const V c7 = V::gather(coeff + 7, idx);
      const V energy = V::fma(V::fma(V::fma(c3, t, c2), t, c1), t, c0);
      const V force = V::fma(V::fma(V::fma(c7, t, c6), t, c5), t, c4);
      const V qqv = V::load(&b.qq[i]);
      (qqv * energy).store(&b.e_coul[i]);
      (qqv * force).store(&b.f_over_r[i]);
      // Pairs below the table range fall back to the analytic kernel, like
      // the scalar lookup; both instantiations take the same per-lane path.
      unsigned bits = V::mask_bits(V::cmp_lt(r2v, s_min));
      while (bits != 0) {
        const int l = __builtin_ctz(bits);
        bits &= bits - 1;
        const ForceTable::Sample s = table.analytic(b.r2[i + l]);
        b.e_coul[i + l] = b.qq[i + l] * s.energy;
        b.f_over_r[i + l] = b.qq[i + l] * s.force_over_r;
      }
    }
  } else {
    // Analytic erfc/sqrt: scalar per pair in both modes (no portable vector
    // erfc); the LJ term below still vectorizes.
    const double alpha = cfg.alpha;
    const std::size_t n = b.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double qq = b.qq[i];
      if (qq != 0.0) {
        const double r = std::sqrt(b.r2[i]);
        b.e_coul[i] = qq * g_short(r, alpha);
        b.f_over_r[i] = -qq * g_short_derivative(r, alpha) / r;
      } else {
        b.e_coul[i] = 0.0;
        b.f_over_r[i] = 0.0;
      }
    }
  }

  // --- Lennard-Jones from the precombined mixing parameters.
  const V one = V::broadcast(1.0);
  const V twelve = V::broadcast(12.0);
  const V six = V::broadcast(6.0);
  for (std::size_t i = 0; i < np; i += W) {
    const V r2v = V::load(&b.r2[i]);
    const V c6v = V::load(&b.c6[i]);
    const V c12v = V::load(&b.c12[i]);
    const V inv_r2 = one / r2v;
    const V inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const V elj = (c12v * inv_r6 - c6v) * inv_r6 - V::load(&b.e_shift[i]);
    const V flj = (twelve * c12v * inv_r6 - six * c6v) * inv_r6 * inv_r2;
    elj.store(&b.e_lj[i]);
    (V::load(&b.f_over_r[i]) + flj).store(&b.f_over_r[i]);
  }
}

}  // namespace

void evaluate_pair_batch(PairBatch& batch, const PairKernelConfig& config,
                         simd::Mode mode) {
  if (mode == simd::Mode::kNative) {
    eval_impl<simd::kNativeWidth>(batch, config);
  } else {
    eval_impl<1>(batch, config);
  }
}

}  // namespace tme
