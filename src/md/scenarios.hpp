// Deterministic scenario library for the solver x scenario cross-validation
// tier (tests/test_solver_matrix.cpp) and the solver benches.
//
// Each scenario is a reproducible periodic point-charge configuration —
// built from a seed, never from global state — covering the regimes the
// long-range backends must agree on: neutral TIP3P water, NaCl electrolyte,
// a net-charged solute (exercising the uniform-background correction),
// non-cubic/anisotropic cells, and random-gas N-size sweeps.  Scenarios
// built from a full WaterBox also carry the MD system/topology so matrix
// cells can run short NVE energy-drift checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "grid/grid3d.hpp"
#include "md/water_box.hpp"
#include "obs/json.hpp"
#include "util/vec3.hpp"

namespace tme {

struct Scenario {
  std::string name;
  Box box;
  std::vector<Vec3> positions;  // nm
  std::vector<double> charges;  // e; non-neutral for charged solutes
  // Recommended finest mesh: anisotropic cells get anisotropic grids so the
  // spacing stays (roughly) uniform per axis.
  GridDims grid{16, 16, 16};
  // Full MD state for NVE-drift cells; absent for pure point-charge
  // configurations (charged solute, replicated cells, random gas).
  std::optional<WaterBox> md;

  double total_charge() const;
  // Scenario manifest (name, atom count, box, net charge) for per-cell
  // exports.
  obs::JsonValue describe() const;
};

// Neutral TIP3P water on a lattice (carries MD state).
Scenario scenario_tip3p_water(std::size_t molecules, std::uint64_t seed);

// TIP3P water with `pairs` molecules swapped for Na+/Cl- (neutral; carries
// MD state) — the paper's "ions and solvent water" composition.
Scenario scenario_nacl_electrolyte(std::size_t molecules, std::size_t pairs,
                                   std::uint64_t seed);

// Water box whose first molecule is collapsed to a bare point charge of
// `solute_charge`, leaving the cell with a net charge: every backend must
// apply the same neutralising-background correction for totals to agree.
Scenario scenario_charged_solute(std::size_t molecules, double solute_charge,
                                 std::uint64_t seed);

// A 1 x 1 x 2 replication of a water box: an anisotropic {L, L, 2L} cell
// with a matching {n, n, 2n} mesh.
Scenario scenario_anisotropic_water(std::size_t molecules, std::uint64_t seed);

// Neutralised uniform random charges in a cubic box — the N-size sweep
// workload.
Scenario scenario_random_gas(std::size_t atoms, double box_length,
                             std::uint64_t seed);

}  // namespace tme
