// Gauss–Legendre quadrature on [-1, 1].
//
// The TME middle-range kernel approximation (paper Eq. 6–7) applies an
// M-point Gauss–Legendre rule to the integral representation of
// g_{alpha,l}(r); this module provides the nodes/weights for arbitrary M.
#pragma once

#include <cstddef>
#include <vector>

namespace tme {

struct QuadratureRule {
  std::vector<double> nodes;    // in (-1, 1), ascending
  std::vector<double> weights;  // positive, sum = 2
};

// Computes the M-point Gauss–Legendre rule by Newton iteration on the
// Legendre recurrence.  Accurate to ~1 ulp for M up to several hundred.
QuadratureRule gauss_legendre(std::size_t m);

// Integrate f over [a, b] with an M-point rule (convenience for tests).
template <typename F>
double integrate_gl(const F& f, double a, double b, std::size_t m) {
  const QuadratureRule rule = gauss_legendre(m);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return half * sum;
}

}  // namespace tme
