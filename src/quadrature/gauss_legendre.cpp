#include "quadrature/gauss_legendre.hpp"

#include <cmath>
#include <stdexcept>

namespace tme {

namespace {

// Legendre polynomial P_m and derivative P_m' at x via the three-term
// recurrence; returns {P_m(x), P_m'(x)}.
struct LegendreEval {
  double value;
  double derivative;
};

LegendreEval legendre(std::size_t m, double x) {
  double p0 = 1.0;  // P_0
  double p1 = x;    // P_1
  if (m == 0) return {p0, 0.0};
  for (std::size_t k = 2; k <= m; ++k) {
    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = p2;
  }
  // P_m' from P_m and P_{m-1}: (1-x^2) P_m' = m (P_{m-1} - x P_m).
  const double d = m * (p0 - x * p1) / (1.0 - x * x);
  return {p1, d};
}

}  // namespace

QuadratureRule gauss_legendre(std::size_t m) {
  if (m == 0) throw std::invalid_argument("gauss_legendre: m must be >= 1");
  QuadratureRule rule;
  rule.nodes.resize(m);
  rule.weights.resize(m);
  const std::size_t half = (m + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    // Tricomi initial guess for the i-th root (descending from +1).
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(m) + 0.5));
    LegendreEval ev{};
    for (int iter = 0; iter < 100; ++iter) {
      ev = legendre(m, x);
      const double dx = ev.value / ev.derivative;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    ev = legendre(m, x);
    const double w = 2.0 / ((1.0 - x * x) * ev.derivative * ev.derivative);
    // Store ascending: i counts from the largest root.
    rule.nodes[m - 1 - i] = x;
    rule.weights[m - 1 - i] = w;
    rule.nodes[i] = -x;
    rule.weights[i] = w;
  }
  if (m % 2 == 1) {
    // Middle node is exactly zero for odd m.
    rule.nodes[m / 2] = 0.0;
    const LegendreEval ev = legendre(m, 0.0);
    rule.weights[m / 2] = 2.0 / (ev.derivative * ev.derivative);
  }
  return rule;
}

}  // namespace tme
