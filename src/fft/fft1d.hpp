// Self-contained complex FFT.
//
// Power-of-two sizes use an iterative radix-2 Cooley–Tukey transform with
// precomputed twiddles; every other size falls back to Bluestein's chirp-z
// algorithm (which itself runs on the radix-2 core).  The paper's grids are
// 16/32/64 per axis, all powers of two, so the fast path is the one the
// reproduction exercises; Bluestein keeps the library usable for arbitrary
// box discretisations.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace tme {

class Fft1d {
 public:
  explicit Fft1d(std::size_t n);

  std::size_t size() const { return n_; }

  // In-place forward transform X_k = sum_m x_m exp(-2 pi i k m / n).
  void forward(std::complex<double>* data) const;

  // In-place inverse transform with 1/n normalisation.
  void inverse(std::complex<double>* data) const;

 private:
  void radix2(std::complex<double>* data, bool invert) const;
  void bluestein(std::complex<double>* data, bool invert) const;

  std::size_t n_ = 0;
  bool pow2_ = false;
  // Radix-2 machinery (for n itself, or for the Bluestein helper size).
  std::vector<std::size_t> bitrev_;
  std::vector<std::complex<double>> twiddles_;  // exp(-2 pi i j / n), j < n/2
  // Bluestein machinery.
  std::size_t conv_n_ = 0;  // power-of-two >= 2n-1
  std::vector<std::complex<double>> chirp_;       // exp(-i pi k^2 / n)
  std::vector<std::complex<double>> chirp_fft_;   // FFT of the padded conjugate chirp
  std::vector<std::size_t> conv_bitrev_;
  std::vector<std::complex<double>> conv_twiddles_;
};

// Round up to the next power of two (>= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace tme
