// 3D complex FFT built from 1D transforms, in the x-fastest layout used by
// the whole library: index(ix, iy, iz) = (iz * ny + iy) * nx + ix.
//
// This mirrors the structure of the paper's FPGA implementation (consecutive
// 1D FFTs along x, y, z through an orthogonal memory); here the "orthogonal
// memory" is a strided gather/scatter.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"

namespace tme {

class Fft3d {
 public:
  Fft3d(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return nx_ * ny_ * nz_; }

  // In-place transforms on size() complex values.
  void forward(std::vector<std::complex<double>>& data) const;
  void inverse(std::vector<std::complex<double>>& data) const;

  // Convenience: forward transform of real data into a complex spectrum.
  std::vector<std::complex<double>> forward_real(const std::vector<double>& data) const;

  // Inverse transform, returning the real part (imaginary part must be
  // numerically zero; callers transform Hermitian spectra).
  std::vector<double> inverse_to_real(std::vector<std::complex<double>> data) const;

 private:
  enum class Axis { kX, kY, kZ };
  void transform_axis(std::vector<std::complex<double>>& data, Axis axis,
                      bool invert) const;

  std::size_t nx_, ny_, nz_;
  Fft1d fft_x_, fft_y_, fft_z_;
};

}  // namespace tme
