#include "fft/fft3d.hpp"

#include <stdexcept>

namespace tme {

Fft3d::Fft3d(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), fft_x_(nx), fft_y_(ny), fft_z_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("Fft3d: all dimensions must be positive");
  }
}

void Fft3d::transform_axis(std::vector<std::complex<double>>& data, Axis axis,
                           bool invert) const {
  std::vector<std::complex<double>> line;
  switch (axis) {
    case Axis::kX: {
      // Contiguous lines: transform in place.
      for (std::size_t iz = 0; iz < nz_; ++iz) {
        for (std::size_t iy = 0; iy < ny_; ++iy) {
          std::complex<double>* row = data.data() + (iz * ny_ + iy) * nx_;
          invert ? fft_x_.inverse(row) : fft_x_.forward(row);
        }
      }
      break;
    }
    case Axis::kY: {
      line.resize(ny_);
      for (std::size_t iz = 0; iz < nz_; ++iz) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          const std::size_t base = iz * ny_ * nx_ + ix;
          for (std::size_t iy = 0; iy < ny_; ++iy) line[iy] = data[base + iy * nx_];
          invert ? fft_y_.inverse(line.data()) : fft_y_.forward(line.data());
          for (std::size_t iy = 0; iy < ny_; ++iy) data[base + iy * nx_] = line[iy];
        }
      }
      break;
    }
    case Axis::kZ: {
      line.resize(nz_);
      const std::size_t plane = nx_ * ny_;
      for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          const std::size_t base = iy * nx_ + ix;
          for (std::size_t iz = 0; iz < nz_; ++iz) line[iz] = data[base + iz * plane];
          invert ? fft_z_.inverse(line.data()) : fft_z_.forward(line.data());
          for (std::size_t iz = 0; iz < nz_; ++iz) data[base + iz * plane] = line[iz];
        }
      }
      break;
    }
  }
}

void Fft3d::forward(std::vector<std::complex<double>>& data) const {
  if (data.size() != size()) throw std::invalid_argument("Fft3d::forward: size mismatch");
  transform_axis(data, Axis::kX, false);
  transform_axis(data, Axis::kY, false);
  transform_axis(data, Axis::kZ, false);
}

void Fft3d::inverse(std::vector<std::complex<double>>& data) const {
  if (data.size() != size()) throw std::invalid_argument("Fft3d::inverse: size mismatch");
  transform_axis(data, Axis::kZ, true);
  transform_axis(data, Axis::kY, true);
  transform_axis(data, Axis::kX, true);
}

std::vector<std::complex<double>> Fft3d::forward_real(
    const std::vector<double>& data) const {
  if (data.size() != size())
    throw std::invalid_argument("Fft3d::forward_real: size mismatch");
  std::vector<std::complex<double>> out(data.begin(), data.end());
  forward(out);
  return out;
}

std::vector<double> Fft3d::inverse_to_real(
    std::vector<std::complex<double>> data) const {
  inverse(data);
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

}  // namespace tme
