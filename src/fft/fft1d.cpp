#include "fft/fft1d.hpp"

#include <cmath>
#include <stdexcept>

namespace tme {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    rev[i] = (rev[i >> 1] >> 1) | (i & 1 ? n >> 1 : 0);
  }
  return rev;
}

std::vector<std::complex<double>> make_twiddles(std::size_t n) {
  std::vector<std::complex<double>> tw(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) {
    const double ang = -2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n);
    tw[j] = {std::cos(ang), std::sin(ang)};
  }
  return tw;
}

void radix2_core(std::complex<double>* data, std::size_t n,
                 const std::vector<std::size_t>& bitrev,
                 const std::vector<std::complex<double>>& twiddles, bool invert) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i < bitrev[i]) std::swap(data[i], data[bitrev[i]]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t block = 0; block < n; block += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        std::complex<double> w = twiddles[j * stride];
        if (invert) w = std::conj(w);
        const std::complex<double> a = data[block + j];
        const std::complex<double> b = data[block + j + len / 2] * w;
        data[block + j] = a + b;
        data[block + j + len / 2] = a - b;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft1d::Fft1d(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("Fft1d: size must be positive");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddles_ = make_twiddles(n_);
    return;
  }
  // Bluestein setup: x_k chirped, convolved with the conjugate chirp.
  conv_n_ = next_pow2(2 * n_ - 1);
  conv_bitrev_ = make_bitrev(conv_n_);
  conv_twiddles_ = make_twiddles(conv_n_);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the angle argument small and exact.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = -M_PI * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = {std::cos(ang), std::sin(ang)};
  }
  std::vector<std::complex<double>> b(conv_n_, {0.0, 0.0});
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[conv_n_ - k] = std::conj(chirp_[k]);
  }
  radix2_core(b.data(), conv_n_, conv_bitrev_, conv_twiddles_, false);
  chirp_fft_ = std::move(b);
}

void Fft1d::radix2(std::complex<double>* data, bool invert) const {
  radix2_core(data, n_, bitrev_, twiddles_, invert);
}

void Fft1d::bluestein(std::complex<double>* data, bool invert) const {
  std::vector<std::complex<double>> a(conv_n_, {0.0, 0.0});
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> c = invert ? std::conj(chirp_[k]) : chirp_[k];
    a[k] = data[k] * c;
  }
  radix2_core(a.data(), conv_n_, conv_bitrev_, conv_twiddles_, false);
  if (invert) {
    for (std::size_t k = 0; k < conv_n_; ++k) a[k] *= std::conj(chirp_fft_[k]);
  } else {
    for (std::size_t k = 0; k < conv_n_; ++k) a[k] *= chirp_fft_[k];
  }
  radix2_core(a.data(), conv_n_, conv_bitrev_, conv_twiddles_, true);
  const double scale = invert ? 1.0 / static_cast<double>(n_) : 1.0;
  for (std::size_t k = 0; k < n_; ++k) {
    const std::complex<double> c = invert ? std::conj(chirp_[k]) : chirp_[k];
    data[k] = a[k] * c * scale;
  }
}

void Fft1d::forward(std::complex<double>* data) const {
  pow2_ ? radix2(data, false) : bluestein(data, false);
}

void Fft1d::inverse(std::complex<double>* data) const {
  pow2_ ? radix2(data, true) : bluestein(data, true);
}

}  // namespace tme
