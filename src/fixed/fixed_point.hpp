// Fixed-point arithmetic emulating the MDGRAPE-4A datapaths.
//
// The hardware computes (paper Sec. IV): grid charges/potentials as 32-bit
// fixed point with a tunable binary point, convolution coefficients as
// 24-bit fixed point with a 24-bit fractional part ("maximum 1 - 2^-24"),
// LRU accumulation at 32 bits, total potential at 64 bits.  This module
// provides saturating quantisation plus fixed-point variants of the grid
// pipeline stages so the quantisation behaviour the paper's accuracy
// numbers depend on can be reproduced and tested in software.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"

namespace tme {

// Signed Qx.frac fixed-point value held in `Bits` total bits (storage is
// int64 for convenience; the range check enforces the declared width).
struct FixedFormat {
  int total_bits = 32;
  int frac_bits = 24;

  std::int64_t max_raw() const { return (std::int64_t{1} << (total_bits - 1)) - 1; }
  std::int64_t min_raw() const { return -(std::int64_t{1} << (total_bits - 1)); }
  double resolution() const;
};

// Round-to-nearest quantisation with saturation.
std::int64_t quantize(double value, const FixedFormat& fmt);
double dequantize(std::int64_t raw, const FixedFormat& fmt);

// Round-trips a double through the format (the usual way to model one
// hardware register).
double quantize_value(double value, const FixedFormat& fmt);

// Quantise a whole grid in place; returns the number of saturated points.
std::size_t quantize_grid(Grid3d& grid, const FixedFormat& fmt);

// True when the value survives quantisation to `fmt` without saturating
// (non-finite values never fit).
bool fits(double value, const FixedFormat& fmt);

// Number of values that would saturate the format — the numerical
// guardrail's overflow probe over force/position arrays.
std::size_t count_overflow(std::span<const double> values, const FixedFormat& fmt);

// Fixed-point separable convolution along one axis, mirroring the GCU:
//  - kernel taps quantised to `coeff_fmt` (24-bit fractional),
//  - input grid values quantised to `grid_fmt`,
//  - products accumulated exactly in 64-bit,
//  - the result shifted back to `grid_fmt` with saturation (the GCU's
//    "arbitrary binary point ... shifted by a specified amount" maps to the
//    caller choosing grid_fmt.frac_bits to avoid overflow).
void convolve_axis_fixed(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                         const FixedFormat& grid_fmt, const FixedFormat& coeff_fmt,
                         Grid3d& out);

// Full fixed-point tensor convolution (axis passes per term, accumulated in
// a double grid scaled by `scale` like the floating path).
void convolve_tensor_fixed(const Grid3d& in, const std::vector<SeparableTerm>& terms,
                           double scale, const FixedFormat& grid_fmt,
                           const FixedFormat& coeff_fmt, Grid3d& out);

// Formats used by the hardware, for convenience.  Both binary points are
// tunable on the real chip ("the arbitrary binary point ... can be shifted
// by a specified amount"); the defaults leave integer headroom for the
// omega-sharpened kernel taps (|G_0| can reach ~5) and for accumulated grid
// charges.
FixedFormat mdgrape_grid_format(int frac_bits = 20);
FixedFormat mdgrape_coeff_format(int frac_bits = 18);

}  // namespace tme
