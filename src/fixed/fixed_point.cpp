#include "fixed/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

namespace tme {

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits); }

std::int64_t quantize(double value, const FixedFormat& fmt) {
  if (fmt.total_bits < 2 || fmt.total_bits > 63) {
    throw std::invalid_argument("quantize: total_bits out of range");
  }
  const double scaled = std::ldexp(value, fmt.frac_bits);
  const double rounded = std::nearbyint(scaled);
  if (rounded >= static_cast<double>(fmt.max_raw())) return fmt.max_raw();
  if (rounded <= static_cast<double>(fmt.min_raw())) return fmt.min_raw();
  return static_cast<std::int64_t>(rounded);
}

double dequantize(std::int64_t raw, const FixedFormat& fmt) {
  return std::ldexp(static_cast<double>(raw), -fmt.frac_bits);
}

double quantize_value(double value, const FixedFormat& fmt) {
  return dequantize(quantize(value, fmt), fmt);
}

bool fits(double value, const FixedFormat& fmt) {
  if (!std::isfinite(value)) return false;
  const double rounded = std::nearbyint(std::ldexp(value, fmt.frac_bits));
  return rounded < static_cast<double>(fmt.max_raw()) &&
         rounded > static_cast<double>(fmt.min_raw());
}

std::size_t count_overflow(std::span<const double> values, const FixedFormat& fmt) {
  std::size_t overflowed = 0;
  for (const double v : values) {
    if (!fits(v, fmt)) ++overflowed;
  }
  return overflowed;
}

std::size_t quantize_grid(Grid3d& grid, const FixedFormat& fmt) {
  std::size_t saturated = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::int64_t raw = quantize(grid[i], fmt);
    if (raw == fmt.max_raw() || raw == fmt.min_raw()) ++saturated;
    grid[i] = dequantize(raw, fmt);
  }
  return saturated;
}

void convolve_axis_fixed(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                         const FixedFormat& grid_fmt, const FixedFormat& coeff_fmt,
                         Grid3d& out) {
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_axis_fixed: dimension mismatch");
  }
  // Quantise inputs once.
  const std::size_t n = in.size();
  std::vector<std::int64_t> src(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = quantize(in[i], grid_fmt);
  std::vector<std::int64_t> taps(kernel.taps.size());
  for (std::size_t t = 0; t < taps.size(); ++t) {
    taps[t] = quantize(kernel.taps[t], coeff_fmt);
  }

  const auto [nx, ny, nz] = in.dims();
  const int c = kernel.cutoff;
  auto idx_along = [&](std::size_t base_ix, std::size_t base_iy, std::size_t base_iz,
                       long offset) {
    long ix = static_cast<long>(base_ix), iy = static_cast<long>(base_iy),
         iz = static_cast<long>(base_iz);
    switch (axis) {
      case ConvAxis::kX: ix = offset; break;
      case ConvAxis::kY: iy = offset; break;
      case ConvAxis::kZ: iz = offset; break;
    }
    return (Grid3d::wrap(iz, nz) * ny + Grid3d::wrap(iy, ny)) * nx +
           Grid3d::wrap(ix, nx);
  };
  const std::size_t n_axis = axis == ConvAxis::kX ? nx : (axis == ConvAxis::kY ? ny : nz);

  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t along = axis == ConvAxis::kX ? ix
                                  : axis == ConvAxis::kY ? iy
                                                         : iz;
        // Exact 64-bit accumulation of (grid * coeff) products; the product
        // carries grid_frac + coeff_frac fractional bits.
        std::int64_t acc = 0;
        for (int m = -c; m <= c; ++m) {
          const std::size_t s =
              idx_along(ix, iy, iz, static_cast<long>(along) - m +
                                        static_cast<long>(4 * n_axis));
          acc += src[s] * taps[static_cast<std::size_t>(m + c)];
        }
        // Renormalise to grid format: drop coeff_frac fractional bits with
        // rounding, then saturate to the grid width.
        const std::int64_t half = std::int64_t{1} << (coeff_fmt.frac_bits - 1);
        std::int64_t res = (acc + (acc >= 0 ? half : -half)) >> coeff_fmt.frac_bits;
        res = std::min(std::max(res, grid_fmt.min_raw()), grid_fmt.max_raw());
        out.at(ix, iy, iz) = dequantize(res, grid_fmt);
      }
    }
  }
}

void convolve_tensor_fixed(const Grid3d& in, const std::vector<SeparableTerm>& terms,
                           double scale, const FixedFormat& grid_fmt,
                           const FixedFormat& coeff_fmt, Grid3d& out) {
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_tensor_fixed: dimension mismatch");
  }
  Grid3d tmp1(in.dims());
  Grid3d tmp2(in.dims());
  for (const SeparableTerm& term : terms) {
    convolve_axis_fixed(in, term.kx, ConvAxis::kX, grid_fmt, coeff_fmt, tmp1);
    convolve_axis_fixed(tmp1, term.ky, ConvAxis::kY, grid_fmt, coeff_fmt, tmp2);
    convolve_axis_fixed(tmp2, term.kz, ConvAxis::kZ, grid_fmt, coeff_fmt, tmp1);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * tmp1[i];
  }
}

FixedFormat mdgrape_grid_format(int frac_bits) { return {32, frac_bits}; }
FixedFormat mdgrape_coeff_format(int frac_bits) { return {24, frac_bits}; }

}  // namespace tme
