// Algorithm-based fault tolerance (ABFT) invariants for the TME pipeline.
//
// Every grid stage of the multilevel solve conserves a cheap checksum:
// charge assignment and restriction preserve the grid total (B-spline /
// two-scale weights sum to 1), prolongation scales it by exactly 8, a
// periodic 1D convolution scales every line sum by the kernel's tap sum,
// and the tinfoil top solve returns a zero-mean grid.  Verifying those
// invariants after each stage detects silent data corruption online with
// O(grid) extra work; the tolerances below bound the rounding (or
// fixed-point quantisation) noise a clean evaluation may legitimately
// accumulate, so a violation implies a real upset.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"

namespace tme::abft {

struct Violation {
  std::string name;        // which invariant (e.g. "charge_total")
  double expected = 0.0;
  double actual = 0.0;
  double tolerance = 0.0;  // scaled tolerance in effect at the check
  int index = -1;          // stage-specific locator (level, line, axis...)
  std::string detail;
};

// Accumulates invariant checks; `tolerance_scale` multiplies every
// tolerance (0 collapses the envelope so any residual fails — the strict
// mode tests use, large values effectively disable checking).
class CheckSet {
 public:
  explicit CheckSet(double tolerance_scale) : scale_(tolerance_scale) {}

  // Returns true when `actual` is finite and within the scaled tolerance of
  // `expected`; records a Violation otherwise.
  bool check(const std::string& name, double expected, double actual,
             double tolerance, int index = -1, const std::string& detail = "");

  std::size_t checks_run() const { return checks_run_; }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  double scale_;
  std::size_t checks_run_ = 0;
  std::vector<Violation> violations_;
};

// Worst-case rounding envelope for a chain of `ops` accumulations of values
// bounded by `magnitude` at machine epsilon `eps` (0x1p-52 for double,
// 0x1p-23 for float).
double rounding_tolerance(std::size_t ops, double magnitude, double eps);

// Quantisation envelope for `ops` values rounded to a fixed-point format
// with `frac_bits` fractional bits.
double fixed_tolerance(std::size_t ops, int frac_bits);

// Sum of every grid value — the conserved total of CA / restriction /
// prolongation.
double grid_total(const Grid3d& grid);

// Sum of a 1D kernel's taps — the per-line gain of a periodic convolution.
double tap_sum(const Kernel1d& kernel);

// Total gain of a separable tensor kernel: sum over terms of the product of
// the three axes' tap sums.
double tensor_gain(const std::vector<SeparableTerm>& terms);

// Huang–Abraham per-line checksum for one periodic axis pass: every line
// along `axis` must satisfy sum(out_line) = tap_sum(kernel) * sum(in_line).
// Each line is one check in `checks` (index = the flattened line id:
// axis 0 -> gz*ny + gy, axis 1 -> gz*nx + gx, axis 2 -> gy*nx + gx), which
// localises a flip to the exact line the recompute must redo.  Returns the
// number of violating lines.
std::size_t check_conv_axis_lines(const Grid3d& in, const Grid3d& out,
                                  const Kernel1d& kernel, int axis, double tol,
                                  CheckSet& checks);

}  // namespace tme::abft
