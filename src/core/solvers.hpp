// TME-backed LongRangeSolver adapters and the name-driven backend registry.
//
// The ewald layer owns the interface and the classical-Ewald / SPME
// backends (ewald/long_range_solver.hpp); this header adds the paper's TME
// (floating point) and the hardware-faithful fixed-point TME, plus a
// registry keyed by backend name so the cross-validation matrix, benches,
// and job specs can construct any backend from one tuning record.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tme.hpp"
#include "core/tme_fixed.hpp"
#include "ewald/long_range_solver.hpp"

namespace tme {

std::unique_ptr<LongRangeSolver> make_tme_solver(const Box& box,
                                                 const TmeParams& params);
std::unique_ptr<LongRangeSolver> make_tme_fixed_solver(
    const Box& box, const TmeParams& params, const TmeFixedConfig& config = {});

// One tuning record covering every backend's accuracy knobs; each backend
// reads the fields it honours (and records them in its describe()).
struct SolverTuning {
  double alpha = 3.0;             // all backends
  GridDims grid{16, 16, 16};      // mesh backends: finest grid
  int order = 6;                  // mesh backends: B-spline order
  int n_cut = 0;                  // ewald: reciprocal cutoff (0 = 1e-15 auto)
  int levels = 1;                 // tme backends
  int grid_cutoff = 8;            // tme backends: g_c
  std::size_t num_gaussians = 4;  // tme backends: M
  bool compute_virial = false;    // spme: also fill CoulombResult::virial
};

// Registered backend names: {"ewald", "spme", "tme", "tme_fixed"}.
const std::vector<std::string>& long_range_backends();

// Builds the named backend for `box`; throws std::invalid_argument on an
// unknown name.
std::unique_ptr<LongRangeSolver> make_long_range_solver(
    const std::string& backend, const Box& box, const SolverTuning& tuning);

}  // namespace tme
