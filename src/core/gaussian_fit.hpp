// Gaussian approximation of the TME middle-range shells (paper Eqs. 6–7).
//
// Each shell g_{alpha,l}(r) is written as an integral of Gaussians over the
// splitting-parameter interval [alpha/2^l, alpha/2^{l-1}] and approximated
// with an M-point Gauss–Legendre rule:
//   g_{alpha,l}(r) ~ (1/2^{l-1}) sum_nu c_nu exp(-(alpha_nu r / 2^{l-1})^2),
//   alpha_nu = (3 - u_nu)/4 * alpha,   c_nu = alpha w_nu / (2 sqrt(pi)).
// The fit is level-independent when distances are measured in units of
// 2^{l-1} (Eq. 5), so one set of (alpha_nu, c_nu) serves every level.
#pragma once

#include <cstddef>
#include <vector>

namespace tme {

struct GaussianTerm {
  double alpha_nu = 0.0;  // nm^-1 (scales with the splitting parameter)
  double c_nu = 0.0;      // nm^-1
};

// The M terms of Eq. 7 for splitting parameter alpha.
std::vector<GaussianTerm> fit_shell_gaussians(double alpha, std::size_t m);

// Least-squares refinement of the quadrature fit: keeps the Gauss–Legendre
// exponents alpha_nu but re-solves the weights c_nu to minimise the L2
// profile error over s in [0, s_max] (the paper notes that "selecting the
// alpha_nu and c_nu values provides many possibilities"; this is the
// simplest member of that family, studied in bench_ablation).
std::vector<GaussianTerm> fit_shell_gaussians_least_squares(double alpha,
                                                            std::size_t m,
                                                            double s_max = 6.0);

// Level-l shell evaluated through the Gaussian fit.
double shell_from_gaussians(const std::vector<GaussianTerm>& terms, double r,
                            int level);

// Normalised shell profile g_{alpha,l}(r) / g_{alpha,l}(0) and its Gaussian
// approximation as functions of s = alpha r / 2^{l-1} — the quantities
// plotted in paper Fig. 3 (invariant in alpha and l).
double shell_profile_exact(double s);
double shell_profile_gaussian(double s, std::size_t m);

}  // namespace tme
