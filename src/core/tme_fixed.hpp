// Hardware-faithful TME grid pipeline: the same multilevel solve as
// Tme::solve_potential, but with the grid data quantised to the MDGRAPE-4A
// fixed-point formats at every stage boundary and the separable
// convolutions performed in integer arithmetic (32-bit grid words, 24-bit
// coefficients, exact 64-bit accumulation — paper Sec. IV.B).
//
// The top-level FFT convolution runs in floating point, as it does on the
// root FPGA ("in the calculation, we used the single-precision
// floating-point format", Sec. IV.C), with fixed<->float conversion at the
// TMENW boundary.
#pragma once

#include "core/tme.hpp"
#include "fixed/fixed_point.hpp"

namespace tme {

struct TmeFixedConfig {
  FixedFormat grid_format = mdgrape_grid_format(20);
  FixedFormat coeff_format = mdgrape_coeff_format(18);
};

// Drop-in fixed-point variant of tme.solve_potential(charges).
Grid3d tme_solve_potential_fixed(const Tme& tme, const Grid3d& finest_charges,
                                 const TmeFixedConfig& config = {});

// Full fixed-point long-range evaluation: CA (double, like the LRU's
// dedicated 24-bit-fraction pipeline which is effectively exact at this
// scale) -> fixed-point grid pipeline -> BI.
CoulombResult tme_compute_fixed(const Tme& tme, std::span<const Vec3> positions,
                                std::span<const double> charges,
                                const TmeFixedConfig& config = {});

// Single-precision variant: the paper's software implementation measures
// "the error of the single-precision Coulomb forces ... of SPME or TME".
// Grid data is rounded to IEEE float at every pipeline stage boundary,
// which captures the dominant fp32 effect (the arithmetic inside a stage
// contributes at the same epsilon level).
void round_grid_to_float(Grid3d& grid);
CoulombResult tme_compute_single(const Tme& tme, std::span<const Vec3> positions,
                                 std::span<const double> charges);

}  // namespace tme
