#include "core/tme_fixed.hpp"

#include <cmath>

#include "ewald/splitting.hpp"
#include "grid/separable_conv.hpp"
#include "grid/transfer.hpp"
#include "obs/metrics.hpp"
#include "util/constants.hpp"

namespace tme {

Grid3d tme_solve_potential_fixed(const Tme& tme, const Grid3d& finest_charges,
                                 const TmeFixedConfig& config) {
  const TmeParams& params = tme.params();
  if (!(finest_charges.dims() == params.grid)) {
    throw std::invalid_argument("tme_solve_potential_fixed: grid mismatch");
  }
  const int levels = params.levels;

  // Downward pass with quantised level charges (the grid memory words).
  std::vector<Grid3d> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  quantize_grid(q[0], config.grid_format);
  for (int l = 1; l <= levels; ++l) {
    TME_PHASE("restriction");
    q[static_cast<std::size_t>(l)] =
        restrict_grid(q[static_cast<std::size_t>(l - 1)], params.order);
    quantize_grid(q[static_cast<std::size_t>(l)], config.grid_format);
  }

  // Top level in floating point (FPGA), quantised on the way back down.
  Grid3d phi;
  {
    TME_PHASE("top_fft");
    phi = tme.top_level().solve_potential(q[static_cast<std::size_t>(levels)]);
  }

  for (int l = levels; l >= 1; --l) {
    Grid3d level_phi;
    {
      TME_PHASE("prolongation");
      level_phi = prolong_grid(phi, params.order);
    }
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    {
      TME_PHASE("convolution");
      convolve_tensor_fixed(q[static_cast<std::size_t>(l - 1)],
                            tme.level_kernels(l), scale, config.grid_format,
                            config.coeff_format, level_phi);
    }
    phi = std::move(level_phi);
  }
  return phi;
}

void round_grid_to_float(Grid3d& grid) {
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = static_cast<double>(static_cast<float>(grid[i]));
  }
}

namespace {

Grid3d solve_potential_single(const Tme& tme, const Grid3d& finest_charges) {
  const TmeParams& params = tme.params();
  const int levels = params.levels;
  std::vector<Grid3d> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  round_grid_to_float(q[0]);
  for (int l = 1; l <= levels; ++l) {
    q[static_cast<std::size_t>(l)] =
        restrict_grid(q[static_cast<std::size_t>(l - 1)], params.order);
    round_grid_to_float(q[static_cast<std::size_t>(l)]);
  }
  Grid3d phi = tme.top_level().solve_potential(q[static_cast<std::size_t>(levels)]);
  round_grid_to_float(phi);
  for (int l = levels; l >= 1; --l) {
    Grid3d level_phi = prolong_grid(phi, params.order);
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    convolve_tensor(q[static_cast<std::size_t>(l - 1)], tme.level_kernels(l),
                    scale, level_phi);
    round_grid_to_float(level_phi);
    phi = std::move(level_phi);
  }
  return phi;
}

}  // namespace

CoulombResult tme_compute_single(const Tme& tme, std::span<const Vec3> positions,
                                 std::span<const double> charges) {
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});
  const ChargeAssigner assigner(tme.box(), tme.params().grid, tme.params().order);
  const Grid3d q_grid = assigner.assign(positions, charges);
  const Grid3d potential = solve_potential_single(tme, q_grid);
  const double q_phi =
      assigner.back_interpolate(potential, positions, charges, &out.forces);
  out.energy_reciprocal = 0.5 * q_phi;
  if (tme.params().subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self =
        -constants::kCoulomb * tme.params().alpha / std::sqrt(M_PI) * q2;
  }
  double q_total = 0.0;
  for (const double q : charges) q_total += q;
  // Same top-level-only k = 0 drop as Tme::compute (see the note there).
  out.energy_background = net_charge_background_energy(
      q_total, tme.top_level().params().alpha, tme.box().volume());
  out.energy = out.energy_reciprocal + out.energy_self + out.energy_background;
  return out;
}

CoulombResult tme_compute_fixed(const Tme& tme, std::span<const Vec3> positions,
                                std::span<const double> charges,
                                const TmeFixedConfig& config) {
  TME_PHASE("tme_fixed");
  TME_COUNTER_ADD("tme_fixed/compute_calls", 1);
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});
  const ChargeAssigner assigner(tme.box(), tme.params().grid, tme.params().order);
  Grid3d q_grid;
  {
    TME_PHASE("charge_assignment");
    q_grid = assigner.assign(positions, charges);
  }
  const Grid3d potential = tme_solve_potential_fixed(tme, q_grid, config);
  double q_phi = 0.0;
  {
    TME_PHASE("back_interpolation");
    q_phi =
        assigner.back_interpolate(potential, positions, charges, &out.forces);
  }
  out.energy_reciprocal = 0.5 * q_phi;
  if (tme.params().subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self =
        -constants::kCoulomb * tme.params().alpha / std::sqrt(M_PI) * q2;
  }
  double q_total = 0.0;
  for (const double q : charges) q_total += q;
  // Same top-level-only k = 0 drop as Tme::compute (see the note there).
  out.energy_background = net_charge_background_energy(
      q_total, tme.top_level().params().alpha, tme.box().volume());
  out.energy = out.energy_reciprocal + out.energy_self + out.energy_background;
  return out;
}

}  // namespace tme
