#include "core/cost_model.hpp"

#include <stdexcept>

namespace tme {

namespace {
void check(const CostModelInput& in) {
  if (in.grid_per_node < 1 || in.grid_cutoff < 1 || in.num_gaussians < 1) {
    throw std::invalid_argument("cost model: all inputs must be >= 1");
  }
}
double cube(double x) { return x * x * x; }
}  // namespace

double gamma_ratio(const CostModelInput& in) {
  check(in);
  return static_cast<double>(in.grid_per_node) / static_cast<double>(in.grid_cutoff);
}

ConvolutionCost msm_level1_cost(const CostModelInput& in) {
  check(in);
  const double taps = 2.0 * in.grid_cutoff + 1.0;
  const double local = static_cast<double>(in.grid_per_node);
  const double gamma = gamma_ratio(in);
  ConvolutionCost cost;
  cost.compute = cube(taps) * cube(local);
  cost.comm = (8.0 + 12.0 * gamma + 6.0 * gamma * gamma) * cube(in.grid_cutoff);
  return cost;
}

ConvolutionCost tme_level1_cost(const CostModelInput& in) {
  check(in);
  const double taps = 2.0 * in.grid_cutoff + 1.0;
  const double local = static_cast<double>(in.grid_per_node);
  const double gamma = gamma_ratio(in);
  ConvolutionCost cost;
  cost.compute = taps * cube(local) * static_cast<double>(in.num_gaussians);
  cost.comm = (2.0 + 4.0 * in.num_gaussians) * gamma * gamma * cube(in.grid_cutoff);
  return cost;
}

}  // namespace tme
