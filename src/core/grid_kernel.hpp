// Tensor-structured grid kernels of the TME middle levels (paper Eqs. 9–11)
// — the coefficient tables the MDGRAPE-4A GCU holds in its dedicated
// registers.
//
// For each Gaussian term nu and axis j the 1D kernel is
//   K^{nu,j}_m = c_nu^{1/3} G_m(alpha_nu h_j),   truncated at |m| <= g_c,
// where G = g * omega * omega is the B-spline expansion of the Gaussian in
// the cyclic algebra of the level's grid.  The 3D kernel K_m is the sum of
// the M tensor products — its convolution with the grid factorises into
// axis-wise passes.
#pragma once

#include <vector>

#include "core/gaussian_fit.hpp"
#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "util/vec3.hpp"

namespace tme {

// The separable terms for one middle level.
//
// `level_dims` is the grid at this level (N / 2^{l-1}); `spacing` the level's
// grid spacing in nm (2^{l-1} h).  Because alpha_nu * h is level-invariant
// in grid units, passing the *finest* spacing h with any level's dims gives
// the same taps up to the cyclic wrap of omega.
// `sharpen = false` builds the naive (un-inverted) kernels for the
// bench_ablation study of the omega * omega design choice.
std::vector<SeparableTerm> build_level_kernels(
    const std::vector<GaussianTerm>& terms, int order, GridDims level_dims,
    const Vec3& finest_spacing, int grid_cutoff, bool sharpen = true);

// Dense (2g_c+1)^3 cube of the summed tensor kernel — the direct 3D
// convolution kernel a B-spline MSM implementation would use.  Kept for
// baseline benchmarks and tests of the separable path.
std::vector<double> dense_kernel_cube(const std::vector<SeparableTerm>& terms,
                                      int grid_cutoff);

}  // namespace tme
