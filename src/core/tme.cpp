#include "core/tme.hpp"

#include <cmath>
#include <stdexcept>

#include "core/grid_kernel.hpp"
#include "ewald/greens_function.hpp"
#include "ewald/splitting.hpp"
#include "fft/fft3d.hpp"
#include "grid/transfer.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/constants.hpp"

namespace tme {

namespace {

GridDims dims_at_level(GridDims finest, int level) {
  // level = 1 is the finest; each level halves the extents.
  GridDims d = finest;
  for (int l = 1; l < level; ++l) d = d.halved();
  return d;
}

}  // namespace

Tme::Tme(const Box& box, const TmeParams& params)
    : box_(box),
      params_(params),
      assigner_(box, params.grid, params.order) {
  if (params.order % 2 != 0 || params.order < 2) {
    throw std::invalid_argument("Tme: order must be even and >= 2");
  }
  if (params.levels < 1) throw std::invalid_argument("Tme: levels must be >= 1");
  if (params.num_gaussians < 1) {
    throw std::invalid_argument("Tme: num_gaussians must be >= 1");
  }
  // Validate the hierarchy (throws if any level has odd extents) and make
  // sure the top grid still supports the spline order.
  const GridDims top = dims_at_level(params.grid, params.levels + 1);
  if (top.nx < static_cast<std::size_t>(params.order) ||
      top.ny < static_cast<std::size_t>(params.order) ||
      top.nz < static_cast<std::size_t>(params.order)) {
    throw std::invalid_argument("Tme: top-level grid too coarse for spline order");
  }

  gaussians_ = fit_shell_gaussians(params.alpha, params.num_gaussians);
  const Vec3 h = assigner_.spacing();
  kernels_.reserve(static_cast<std::size_t>(params.levels));
  for (int l = 1; l <= params.levels; ++l) {
    kernels_.push_back(build_level_kernels(gaussians_, params.order,
                                           dims_at_level(params.grid, l), h,
                                           params.grid_cutoff));
  }

  SpmeParams top_params;
  top_params.order = params.order;
  top_params.grid = top;
  top_params.alpha = params.alpha / std::ldexp(1.0, params.levels);
  top_params.subtract_self = false;  // handled once, below
  top_ = std::make_unique<Spme>(box, top_params);

  if (params.top_level_mode == TopLevelMode::kDense) {
    // The exact periodic real-space kernel: inverse transform of the
    // influence function (construction may use an FFT; runtime must not).
    const std::vector<double> influence =
        spme_influence(box, top, params.order, top_params.alpha);
    Fft3d fft(top.nx, top.ny, top.nz);
    std::vector<std::complex<double>> spectrum(influence.begin(), influence.end());
    top_dense_kernel_ = Grid3d(top);
    top_dense_kernel_.values() = fft.inverse_to_real(std::move(spectrum));
  }
}

Grid3d Tme::dense_top_solve(const Grid3d& charges) const {
  const GridDims& d = top_dense_kernel_.dims();
  Grid3d phi(d);
  // Direct periodic convolution: Phi_n = sum_m K_{n-m} Q_m.
  parallel_for(0, d.nz, [&](std::size_t nz) {
    for (std::size_t ny = 0; ny < d.ny; ++ny) {
      for (std::size_t nx = 0; nx < d.nx; ++nx) {
        double acc = 0.0;
        for (std::size_t mz = 0; mz < d.nz; ++mz) {
          const std::size_t kz = (nz + d.nz - mz) % d.nz;
          for (std::size_t my = 0; my < d.ny; ++my) {
            const std::size_t ky = (ny + d.ny - my) % d.ny;
            const std::size_t row_k = (kz * d.ny + ky) * d.nx;
            const std::size_t row_q = (mz * d.ny + my) * d.nx;
            for (std::size_t mx = 0; mx < d.nx; ++mx) {
              const std::size_t kx = (nx + d.nx - mx) % d.nx;
              acc += top_dense_kernel_[row_k + kx] * charges[row_q + mx];
            }
          }
        }
        phi.at(nx, ny, nz) = acc;
      }
    }
  });
  return phi;
}

GridDims Tme::level_dims(int level) const {
  if (level < 1 || level > params_.levels + 1) {
    throw std::invalid_argument("Tme::level_dims: level out of range");
  }
  return dims_at_level(params_.grid, level);
}

const std::vector<SeparableTerm>& Tme::level_kernels(int level) const {
  if (level < 1 || level > params_.levels) {
    throw std::invalid_argument("Tme::level_kernels: level out of range");
  }
  return kernels_[static_cast<std::size_t>(level - 1)];
}

Grid3d Tme::solve_potential(const Grid3d& finest_charges, TmeTrace* trace) const {
  if (!(finest_charges.dims() == params_.grid)) {
    throw std::invalid_argument("Tme::solve_potential: grid mismatch");
  }
  const int levels = params_.levels;

  // Downward pass: restrictions produce Q^1 .. Q^{L+1}.
  std::vector<Grid3d> q(static_cast<std::size_t>(levels) + 1);
  q[0] = finest_charges;
  for (int l = 1; l <= levels; ++l) {
    TME_PHASE("restriction");
    q[static_cast<std::size_t>(l)] =
        restrict_grid(q[static_cast<std::size_t>(l - 1)], params_.order);
  }

  // Top level: SPME convolution on the coarsest grid (the FPGA 3D FFT), or
  // the FFT-free dense periodic convolution.
  Grid3d phi;
  {
    TME_PHASE("top_fft");
    phi = params_.top_level_mode == TopLevelMode::kSpme
              ? top_->solve_potential(q[static_cast<std::size_t>(levels)])
              : dense_top_solve(q[static_cast<std::size_t>(levels)]);
  }

  std::vector<Grid3d> phi_trace;
  if (trace != nullptr) phi_trace.resize(static_cast<std::size_t>(levels) + 1);
  if (trace != nullptr) phi_trace[static_cast<std::size_t>(levels)] = phi;

  // Upward pass: prolong and add each level's separable convolution.
  for (int l = levels; l >= 1; --l) {
    Grid3d level_phi;
    {
      TME_PHASE("prolongation");
      level_phi = prolong_grid(phi, params_.order);
    }
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    {
      TME_PHASE("convolution");
      convolve_tensor(q[static_cast<std::size_t>(l - 1)],
                      kernels_[static_cast<std::size_t>(l - 1)], scale,
                      level_phi);
    }
    phi = std::move(level_phi);
    if (trace != nullptr) phi_trace[static_cast<std::size_t>(l - 1)] = phi;
  }

  if (trace != nullptr) {
    trace->level_charges = std::move(q);
    trace->level_potentials = std::move(phi_trace);
  }
  return phi;
}

CoulombResult Tme::compute(std::span<const Vec3> positions,
                           std::span<const double> charges,
                           TmeTrace* trace) const {
  TME_PHASE("tme");
  TME_COUNTER_ADD("tme/compute_calls", 1);
  TME_GAUGE_SET("tme/atoms", positions.size());
  TME_GAUGE_SET("tme/grid_points", params_.grid.total());
  TME_GAUGE_SET("tme/levels", params_.levels);
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});

  Grid3d q_grid;
  {
    TME_PHASE("charge_assignment");
    q_grid = assigner_.assign(positions, charges);
  }
  const Grid3d potential = solve_potential(q_grid, trace);
  double q_phi = 0.0;
  {
    TME_PHASE("back_interpolation");
    q_phi =
        assigner_.back_interpolate(potential, positions, charges, &out.forces);
  }
  out.energy_reciprocal = 0.5 * q_phi;

  if (params_.subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self = -constants::kCoulomb * params_.alpha / std::sqrt(M_PI) * q2;
  }
  // Net-charge background: only the top level drops its k = 0 mode (the
  // middle-level separable stencils carry their shell kernels' finite DC),
  // so the correction uses the top-level splitting alpha / 2^L.  The shell
  // DC terms telescope with it to the full -pi/alpha^2 correction.
  double q_total = 0.0;
  for (const double q : charges) q_total += q;
  out.energy_background = net_charge_background_energy(
      q_total, top_->params().alpha, box_.volume());
  out.energy = out.energy_reciprocal + out.energy_self + out.energy_background;
  return out;
}

}  // namespace tme
