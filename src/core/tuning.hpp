// Parameter selection for the TME — encodes the operating rules the paper
// establishes so a user only chooses a box, a short-range cutoff, and a
// tolerance:
//
//   alpha      from erfc(alpha r_c) = rtol            (GROMACS convention)
//   grid       so that r_c / h ~ 4 (the paper's r_c = 1.25 nm, 32^3 row:
//              alpha h ~ 0.69); rounded to a hierarchy-friendly extent
//   g_c        8 (Table 1: converged; 12 buys nothing)
//   M          from the shell-fit error vs the target tolerance (Fig. 3(b))
//   L          as deep as the top grid allows (>= 2p per axis keeps the
//              coarse SPME healthy); at least 1
//
// Outside the r_c/h ~ 3..5 window the g_c-truncated kernels degrade — the
// tuner widens the grid rather than let alpha h drift (the failure mode
// documented in tests/test_core.cpp).
#pragma once

#include "core/tme.hpp"
#include "util/vec3.hpp"

namespace tme {

struct TmeTuningRequest {
  double r_cut = 1.2;        // nm, short-range cutoff the MD engine will use
  double rtol = 1e-4;        // erfc(alpha r_c) tolerance
  int max_levels = 2;        // cap on hierarchy depth
  std::size_t max_grid = 256;  // refuse beyond this per-axis extent
};

struct TmeTuning {
  TmeParams params;       // ready to construct a Tme
  double alpha = 0.0;     // also stored in params
  double grid_spacing = 0.0;  // max over axes, nm
  double rc_over_h = 0.0;     // achieved ratio (target ~4)
};

// Throws std::invalid_argument when no feasible grid exists (box too small
// for the spline order, cutoff over half the box, extent cap exceeded).
TmeTuning tune_tme(const Box& box, const TmeTuningRequest& request = {});

}  // namespace tme
