#include "core/tuning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ewald/splitting.hpp"

namespace tme {

namespace {

// Smallest extent >= want that is divisible by 2^levels with an even
// quotient chain and keeps FFT sizes friendly (multiples of 4).
std::size_t round_extent(double want, int levels, std::size_t max_grid) {
  const std::size_t granule = static_cast<std::size_t>(1) << (levels + 1);
  std::size_t n = granule;
  while (n < want) n += granule;
  if (n > max_grid) {
    throw std::invalid_argument("tune_tme: required grid exceeds max_grid");
  }
  return n;
}

}  // namespace

TmeTuning tune_tme(const Box& box, const TmeTuningRequest& request) {
  if (request.r_cut <= 0.0 || request.rtol <= 0.0 || request.rtol >= 1.0) {
    throw std::invalid_argument("tune_tme: bad request");
  }
  const double l_min = std::min({box.lengths.x, box.lengths.y, box.lengths.z});
  if (request.r_cut > 0.5 * l_min) {
    throw std::invalid_argument("tune_tme: r_cut exceeds half the box");
  }

  TmeTuning out;
  out.alpha = alpha_from_tolerance(request.r_cut, request.rtol);

  // Target h = r_c / 4 per axis; deepen the hierarchy while the coarsest
  // grid stays at least 2p per axis.
  const double target_h = request.r_cut / 4.0;
  TmeParams params;
  params.alpha = out.alpha;
  params.grid_cutoff = 8;

  int levels = std::max(1, request.max_levels);
  for (; levels >= 1; --levels) {
    const double want_x = box.lengths.x / target_h;
    const double want_y = box.lengths.y / target_h;
    const double want_z = box.lengths.z / target_h;
    std::size_t nx, ny, nz;
    try {
      nx = round_extent(want_x, levels, request.max_grid);
      ny = round_extent(want_y, levels, request.max_grid);
      nz = round_extent(want_z, levels, request.max_grid);
    } catch (const std::invalid_argument&) {
      if (levels == 1) throw;
      continue;
    }
    const std::size_t top = std::min({nx, ny, nz}) >> levels;
    if (top < 2 * static_cast<std::size_t>(params.order) && levels > 1) {
      continue;  // too deep: coarse SPME would be starved
    }
    if (top < static_cast<std::size_t>(params.order)) {
      if (levels > 1) continue;
      throw std::invalid_argument("tune_tme: box too small for the spline order");
    }
    params.grid = {nx, ny, nz};
    params.levels = levels;
    break;
  }

  // Gaussian count from the shell-fit accuracy (Fig. 3(b)): the fit error
  // should sit below the splitting tolerance.
  const double fit_error[] = {3.0e-2, 1.3e-3, 5.6e-5, 2.7e-6, 1.5e-7};
  std::size_t m = 1;
  while (m < 5 && fit_error[m - 1] > request.rtol) ++m;
  params.num_gaussians = std::max<std::size_t>(m, 2);

  out.params = params;
  out.grid_spacing = std::max({box.lengths.x / static_cast<double>(params.grid.nx),
                               box.lengths.y / static_cast<double>(params.grid.ny),
                               box.lengths.z / static_cast<double>(params.grid.nz)});
  out.rc_over_h = request.r_cut / out.grid_spacing;
  return out;
}

}  // namespace tme
