// Tensor-structured multilevel Ewald summation (TME) — the paper's primary
// contribution (Sec. III), evaluating the long-range (erf) part of the
// Coulomb interaction:
//
//   1. charge assignment (anterpolation) onto the finest grid    [LRU]
//   2. restriction down the level hierarchy, L times             [GCU]
//   3. per-level separable tensor-kernel convolution             [GCU]
//   4. top-level SPME solve on the N/2^L grid (3D FFT)           [TMENW/FPGA]
//   5. prolongation back up, accumulating level potentials       [GCU]
//   6. back interpolation of forces/energies                     [LRU]
//
// With identical (alpha, r_c, p, N) the accuracy converges to SPME as the
// grid cutoff g_c and Gaussian count M grow (paper Table 1).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/gaussian_fit.hpp"
#include "ewald/charge_assignment.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/spme.hpp"
#include "grid/separable_conv.hpp"
#include "util/vec3.hpp"

namespace tme {

// How the coarsest (level L+1) grid potentials are solved.
//   kSpme  — 3D-FFT convolution (the FPGA engine of Sec. IV.C).
//   kDense — direct periodic convolution with the exact top kernel: O(n^2)
//            in top-grid points, FFT-free at runtime.  At 8^3..16^3 tops
//            this is cheap and removes the machine's only FFT — the
//            direction Sec. VI.B gestures at for future accelerators.
enum class TopLevelMode { kSpme, kDense };

struct TmeParams {
  int order = 6;           // B-spline order p (even; the hardware fixes 6)
  GridDims grid;           // finest grid N
  double alpha = 3.0;      // Ewald splitting parameter, nm^-1
  int levels = 1;          // L, number of middle-range levels
  int grid_cutoff = 8;     // g_c, taps per side of the 1D kernels
  std::size_t num_gaussians = 4;  // M (the hardware uses 4; 3 converges)
  TopLevelMode top_level_mode = TopLevelMode::kSpme;
  bool subtract_self = true;
};

// Intermediate grids of one evaluation, exposed so tests and the hardware
// model can inspect each pipeline stage.
struct TmeTrace {
  std::vector<Grid3d> level_charges;     // Q^1 .. Q^{L+1}
  std::vector<Grid3d> level_potentials;  // accumulated Phi^1 .. Phi^{L+1}
};

class Tme {
 public:
  Tme(const Box& box, const TmeParams& params);

  const TmeParams& params() const { return params_; }
  const Box& box() const { return box_; }
  const std::vector<GaussianTerm>& gaussian_terms() const { return gaussians_; }
  const std::vector<SeparableTerm>& level_kernels(int level) const;
  const Spme& top_level() const { return *top_; }

  // Long-range energy and forces (kJ/mol, kJ mol^-1 nm^-1).
  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges,
                        TmeTrace* trace = nullptr) const;

  // The grid-to-grid middle of the pipeline (steps 2–5): finest grid charges
  // in, finest grid potentials out.  Exposed for stage-level testing and for
  // the fixed-point hardware-faithful variant.
  Grid3d solve_potential(const Grid3d& finest_charges, TmeTrace* trace = nullptr) const;

  GridDims level_dims(int level) const;  // level = 1 .. L+1

  // The exact periodic top-level kernel (dense mode only; empty otherwise).
  const Grid3d& top_dense_kernel() const { return top_dense_kernel_; }

 private:
  Grid3d dense_top_solve(const Grid3d& charges) const;

  Box box_;
  TmeParams params_;
  ChargeAssigner assigner_;
  std::vector<GaussianTerm> gaussians_;
  std::vector<std::vector<SeparableTerm>> kernels_;  // per level 1..L
  std::unique_ptr<Spme> top_;
  Grid3d top_dense_kernel_;  // dense mode: IFFT of the influence function
};

}  // namespace tme
