#include "core/gaussian_fit.hpp"

#include <cmath>
#include <stdexcept>

#include "ewald/splitting.hpp"
#include "quadrature/gauss_legendre.hpp"

namespace tme {

std::vector<GaussianTerm> fit_shell_gaussians(double alpha, std::size_t m) {
  if (alpha <= 0.0) throw std::invalid_argument("fit_shell_gaussians: alpha > 0 required");
  const QuadratureRule rule = gauss_legendre(m);
  std::vector<GaussianTerm> terms(m);
  const double c_scale = alpha / (2.0 * std::sqrt(M_PI));
  for (std::size_t nu = 0; nu < m; ++nu) {
    terms[nu].alpha_nu = (3.0 - rule.nodes[nu]) / 4.0 * alpha;
    terms[nu].c_nu = c_scale * rule.weights[nu];
  }
  return terms;
}

double shell_from_gaussians(const std::vector<GaussianTerm>& terms, double r,
                            int level) {
  if (level < 1) throw std::invalid_argument("shell_from_gaussians: level >= 1");
  const double scale = std::ldexp(1.0, level - 1);  // 2^{l-1}
  double sum = 0.0;
  for (const GaussianTerm& t : terms) {
    const double a = t.alpha_nu * r / scale;
    sum += t.c_nu * std::exp(-a * a);
  }
  return sum / scale;
}

std::vector<GaussianTerm> fit_shell_gaussians_least_squares(double alpha,
                                                            std::size_t m,
                                                            double s_max) {
  if (s_max <= 0.0) {
    throw std::invalid_argument("fit_shell_gaussians_least_squares: s_max > 0");
  }
  std::vector<GaussianTerm> terms = fit_shell_gaussians(alpha, m);
  // Work in the dimensionless coordinate s = alpha r (level 1): basis
  // functions b_nu(s) = exp(-(a_nu s)^2) with a_nu = alpha_nu / alpha.
  const std::size_t samples = 400;
  std::vector<double> a(m);
  for (std::size_t nu = 0; nu < m; ++nu) a[nu] = terms[nu].alpha_nu / alpha;

  // Normal equations A c = b for min_c sum_s (sum_nu c_nu b_nu(s) - g(s))^2.
  std::vector<double> mat(m * m, 0.0), rhs(m, 0.0);
  for (std::size_t s_i = 0; s_i <= samples; ++s_i) {
    const double s = s_max * static_cast<double>(s_i) / static_cast<double>(samples);
    const double target = g_shell(s / alpha, alpha, 1);
    std::vector<double> basis(m);
    for (std::size_t nu = 0; nu < m; ++nu) {
      basis[nu] = std::exp(-a[nu] * a[nu] * s * s);
    }
    for (std::size_t i = 0; i < m; ++i) {
      rhs[i] += basis[i] * target;
      for (std::size_t k = 0; k < m; ++k) mat[i * m + k] += basis[i] * basis[k];
    }
  }
  // Gaussian elimination with partial pivoting (m <= ~8).
  std::vector<double> c(rhs);
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(mat[row * m + col]) > std::abs(mat[pivot * m + col])) pivot = row;
    }
    for (std::size_t k = 0; k < m; ++k) std::swap(mat[col * m + k], mat[pivot * m + k]);
    std::swap(c[col], c[pivot]);
    const double diag = mat[col * m + col];
    if (std::abs(diag) < 1e-14) {
      throw std::runtime_error("fit_shell_gaussians_least_squares: singular basis");
    }
    for (std::size_t row = col + 1; row < m; ++row) {
      const double f = mat[row * m + col] / diag;
      for (std::size_t k = col; k < m; ++k) mat[row * m + k] -= f * mat[col * m + k];
      c[row] -= f * c[col];
    }
  }
  for (std::size_t row = m; row-- > 0;) {
    for (std::size_t k = row + 1; k < m; ++k) c[row] -= mat[row * m + k] * c[k];
    c[row] /= mat[row * m + row];
  }
  for (std::size_t nu = 0; nu < m; ++nu) terms[nu].c_nu = c[nu];
  return terms;
}

double shell_profile_exact(double s) {
  // With alpha = 1 and l = 1: g(r)/g(0), g(0) = 2(1 - 1/2)/sqrt(pi).
  const double g0 = g_shell(0.0, 1.0, 1);
  return g_shell(s, 1.0, 1) / g0;
}

double shell_profile_gaussian(double s, std::size_t m) {
  const std::vector<GaussianTerm> terms = fit_shell_gaussians(1.0, m);
  const double g0 = g_shell(0.0, 1.0, 1);
  return shell_from_gaussians(terms, s, 1) / g0;
}

}  // namespace tme
