#include "core/grid_kernel.hpp"

#include <cmath>
#include <stdexcept>

#include "spline/interpolation_coeffs.hpp"

namespace tme {

namespace {

Kernel1d truncate_periodic(const std::vector<double>& g_periodic, int cutoff,
                           double scale) {
  const std::size_t n = g_periodic.size();
  Kernel1d k;
  k.cutoff = cutoff;
  k.taps.resize(static_cast<std::size_t>(2 * cutoff + 1));
  // G is already periodic on the level grid.  When the tap range covers the
  // whole period (2 g_c + 1 > n) two tap offsets can alias to the same
  // periodic class; each class must contribute exactly once or the
  // convolution double-counts it.
  // Fill outward-symmetrically from the centre so the retained tap of each
  // class is the dominant (shortest-distance) one.
  std::vector<bool> seen(n, false);
  for (int dist = 0; dist <= cutoff; ++dist) {
    for (const int m : {dist, -dist}) {
      const std::size_t cls = Grid3d::wrap(m, n);
      double tap = 0.0;
      if (!seen[cls]) {
        seen[cls] = true;
        tap = scale * g_periodic[cls];
      }
      k.taps[static_cast<std::size_t>(m + cutoff)] = tap;
      if (dist == 0) break;  // +0 and -0 are the same tap
    }
  }
  return k;
}

}  // namespace

std::vector<SeparableTerm> build_level_kernels(
    const std::vector<GaussianTerm>& terms, int order, GridDims level_dims,
    const Vec3& finest_spacing, int grid_cutoff, bool sharpen) {
  if (grid_cutoff < 1) {
    throw std::invalid_argument("build_level_kernels: grid_cutoff must be >= 1");
  }
  std::vector<SeparableTerm> out;
  out.reserve(terms.size());
  for (const GaussianTerm& t : terms) {
    // The level-l Gaussian in level-l grid units has width parameter
    // alpha_nu * h_finest (Eq. 5 scaling): level-independent.
    const double cbrt_c = std::cbrt(t.c_nu);
    SeparableTerm st;
    st.kx = truncate_periodic(
        gaussian_grid_kernel(order, level_dims.nx, t.alpha_nu * finest_spacing.x,
                             sharpen),
        grid_cutoff, cbrt_c);
    st.ky = truncate_periodic(
        gaussian_grid_kernel(order, level_dims.ny, t.alpha_nu * finest_spacing.y,
                             sharpen),
        grid_cutoff, cbrt_c);
    st.kz = truncate_periodic(
        gaussian_grid_kernel(order, level_dims.nz, t.alpha_nu * finest_spacing.z,
                             sharpen),
        grid_cutoff, cbrt_c);
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<double> dense_kernel_cube(const std::vector<SeparableTerm>& terms,
                                      int grid_cutoff) {
  const int c = grid_cutoff;
  const std::size_t w = static_cast<std::size_t>(2 * c + 1);
  std::vector<double> cube(w * w * w, 0.0);
  for (const SeparableTerm& t : terms) {
    if (t.kx.cutoff != c || t.ky.cutoff != c || t.kz.cutoff != c) {
      throw std::invalid_argument("dense_kernel_cube: cutoff mismatch");
    }
    for (int mz = -c; mz <= c; ++mz) {
      for (int my = -c; my <= c; ++my) {
        for (int mx = -c; mx <= c; ++mx) {
          cube[(static_cast<std::size_t>(mz + c) * w +
                static_cast<std::size_t>(my + c)) *
                   w +
               static_cast<std::size_t>(mx + c)] +=
              t.kx.tap(mx) * t.ky.tap(my) * t.kz.tap(mz);
        }
      }
    }
  }
  return cube;
}

}  // namespace tme
