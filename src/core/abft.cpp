#include "core/abft.hpp"

#include <cmath>

namespace tme::abft {

bool CheckSet::check(const std::string& name, double expected, double actual,
                     double tolerance, int index, const std::string& detail) {
  ++checks_run_;
  const bool ok = std::isfinite(actual) &&
                  std::abs(actual - expected) <= tolerance * scale_;
  if (!ok) {
    violations_.push_back(
        {name, expected, actual, tolerance * scale_, index, detail});
  }
  return ok;
}

double rounding_tolerance(std::size_t ops, double magnitude, double eps) {
  return static_cast<double>(ops) * eps * std::abs(magnitude);
}

double fixed_tolerance(std::size_t ops, int frac_bits) {
  return static_cast<double>(ops) * std::ldexp(1.0, -frac_bits);
}

double grid_total(const Grid3d& grid) {
  double total = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) total += grid[i];
  return total;
}

double tap_sum(const Kernel1d& kernel) {
  double s = 0.0;
  for (const double t : kernel.taps) s += t;
  return s;
}

double tensor_gain(const std::vector<SeparableTerm>& terms) {
  double gain = 0.0;
  for (const SeparableTerm& term : terms) {
    gain += tap_sum(term.kx) * tap_sum(term.ky) * tap_sum(term.kz);
  }
  return gain;
}

std::size_t check_conv_axis_lines(const Grid3d& in, const Grid3d& out,
                                  const Kernel1d& kernel, int axis, double tol,
                                  CheckSet& checks) {
  const GridDims& d = in.dims();
  const double gain = tap_sum(kernel);
  std::size_t bad = 0;

  // Sum `in` and `out` along `axis` for every perpendicular line; the line
  // index flattens the two perpendicular coordinates with the slower one
  // (larger stride) first.
  const std::size_t na = axis == 0 ? d.nx : (axis == 1 ? d.ny : d.nz);
  const std::size_t nb = axis == 0 ? d.ny : (axis == 1 ? d.nx : d.nx);
  const std::size_t nc = axis == 0 ? d.nz : (axis == 1 ? d.nz : d.ny);
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t b = 0; b < nb; ++b) {
      double in_sum = 0.0, out_sum = 0.0;
      for (std::size_t a = 0; a < na; ++a) {
        std::size_t x, y, z;
        if (axis == 0) {
          x = a; y = b; z = c;
        } else if (axis == 1) {
          x = b; y = a; z = c;
        } else {
          x = b; y = c; z = a;
        }
        in_sum += in.at(x, y, z);
        out_sum += out.at(x, y, z);
      }
      const int line = static_cast<int>(c * nb + b);
      if (!checks.check("conv_line", gain * in_sum, out_sum, tol, line)) ++bad;
    }
  }
  return bad;
}

}  // namespace tme::abft
