#include "core/solvers.hpp"

#include <stdexcept>

#include "util/simd.hpp"

namespace tme {

namespace {

void describe_tme_params(const TmeParams& p, obs::JsonValue& d) {
  auto& obj = d.as_object();
  obj["alpha"] = obs::JsonValue::make_number(p.alpha);
  obj["order"] = obs::JsonValue::make_number(p.order);
  obj["grid_x"] = obs::JsonValue::make_number(static_cast<double>(p.grid.nx));
  obj["grid_y"] = obs::JsonValue::make_number(static_cast<double>(p.grid.ny));
  obj["grid_z"] = obs::JsonValue::make_number(static_cast<double>(p.grid.nz));
  obj["levels"] = obs::JsonValue::make_number(p.levels);
  obj["grid_cutoff"] = obs::JsonValue::make_number(p.grid_cutoff);
  obj["num_gaussians"] =
      obs::JsonValue::make_number(static_cast<double>(p.num_gaussians));
  obj["virial"] = obs::JsonValue::make_bool(false);
  obj["simd"] = simd::describe_json();
}

class TmeSolver final : public LongRangeSolver {
 public:
  TmeSolver(const Box& box, const TmeParams& params) : tme_(box, params) {}

  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    return tme_.compute(positions, charges);
  }

  std::string name() const override { return "tme"; }
  double alpha() const override { return tme_.params().alpha; }
  const Box& box() const override { return tme_.box(); }

  obs::JsonValue describe() const override {
    obs::JsonValue d = obs::JsonValue::make_object();
    d.as_object()["backend"] = obs::JsonValue::make_string(name());
    describe_tme_params(tme_.params(), d);
    return d;
  }

 private:
  Tme tme_;
};

class TmeFixedSolver final : public LongRangeSolver {
 public:
  TmeFixedSolver(const Box& box, const TmeParams& params,
                 const TmeFixedConfig& config)
      : tme_(box, params), config_(config) {}

  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    return tme_compute_fixed(tme_, positions, charges, config_);
  }

  std::string name() const override { return "tme_fixed"; }
  double alpha() const override { return tme_.params().alpha; }
  const Box& box() const override { return tme_.box(); }

  obs::JsonValue describe() const override {
    obs::JsonValue d = obs::JsonValue::make_object();
    auto& obj = d.as_object();
    obj["backend"] = obs::JsonValue::make_string(name());
    describe_tme_params(tme_.params(), d);
    obj["grid_frac_bits"] =
        obs::JsonValue::make_number(config_.grid_format.frac_bits);
    obj["coeff_frac_bits"] =
        obs::JsonValue::make_number(config_.coeff_format.frac_bits);
    return d;
  }

 private:
  Tme tme_;
  TmeFixedConfig config_;
};

TmeParams tme_params_from(const SolverTuning& t) {
  TmeParams p;
  p.alpha = t.alpha;
  p.grid = t.grid;
  p.order = t.order;
  p.levels = t.levels;
  p.grid_cutoff = t.grid_cutoff;
  p.num_gaussians = t.num_gaussians;
  return p;
}

}  // namespace

std::unique_ptr<LongRangeSolver> make_tme_solver(const Box& box,
                                                 const TmeParams& params) {
  return std::make_unique<TmeSolver>(box, params);
}

std::unique_ptr<LongRangeSolver> make_tme_fixed_solver(
    const Box& box, const TmeParams& params, const TmeFixedConfig& config) {
  return std::make_unique<TmeFixedSolver>(box, params, config);
}

const std::vector<std::string>& long_range_backends() {
  static const std::vector<std::string> names{"ewald", "spme", "tme",
                                              "tme_fixed"};
  return names;
}

std::unique_ptr<LongRangeSolver> make_long_range_solver(
    const std::string& backend, const Box& box, const SolverTuning& tuning) {
  if (backend == "ewald") {
    EwaldSolverParams p;
    p.alpha = tuning.alpha;
    p.n_cut = tuning.n_cut;
    return make_ewald_solver(box, p);
  }
  if (backend == "spme") {
    SpmeParams p;
    p.alpha = tuning.alpha;
    p.grid = tuning.grid;
    p.order = tuning.order;
    p.compute_virial = tuning.compute_virial;
    return make_spme_solver(box, p);
  }
  if (backend == "tme") {
    return make_tme_solver(box, tme_params_from(tuning));
  }
  if (backend == "tme_fixed") {
    return make_tme_fixed_solver(box, tme_params_from(tuning));
  }
  throw std::invalid_argument("make_long_range_solver: unknown backend '" +
                              backend + "'");
}

}  // namespace tme
