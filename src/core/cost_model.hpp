// Analytic computation/communication cost model of paper Sec. III.C,
// comparing the level-1 grid-kernel convolution of B-spline MSM (dense 3D,
// range-limited) against the TME (M separable 1D passes).
//
//   gamma := (N_x / P_x) / g_c   (local grid extent over kernel cutoff)
//
//   compute_msm  = (2 g_c + 1)^3 (N_x/P_x)^3
//   compute_tme  = (2 g_c + 1)   (N_x/P_x)^3 M
//   comm_msm     = (8 + 12 gamma + 6 gamma^2) g_c^3
//   comm_tme     = (2 + 4 M) gamma^2 g_c^3
#pragma once

namespace tme {

struct ConvolutionCost {
  double compute = 0.0;  // multiply–accumulate operations per node
  double comm = 0.0;     // grid words exchanged per node
};

struct CostModelInput {
  int grid_per_node = 4;  // N_x / P_x
  int grid_cutoff = 8;    // g_c
  int num_gaussians = 4;  // M (TME only)
};

ConvolutionCost msm_level1_cost(const CostModelInput& in);
ConvolutionCost tme_level1_cost(const CostModelInput& in);

// gamma = (N_x/P_x) / g_c.
double gamma_ratio(const CostModelInput& in);

}  // namespace tme
