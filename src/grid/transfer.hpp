// Grid transfer operators of the TME hierarchy (paper Fig. 2(e)(f)).
//
// Restriction maps level-l grid charges to the coarser level l+1:
//   Q^{l+1}_m = sum_k J_k Q^l_{2m+k}        (axis-wise, periodic)
// Prolongation maps level-(l+1) grid potentials back to level l:
//   P^l_n    += sum_m J_{n-2m} P^{l+1}_m
// where J are the two-scale coefficients of the order-p central B-spline.
// The two maps are adjoint, a property the tests rely on.
#pragma once

#include "grid/grid3d.hpp"

namespace tme {

// Each extent of `fine` must be even; returns the half-size coarse grid.
Grid3d restrict_grid(const Grid3d& fine, int p);

// Returns the fine grid of doubled extents.
Grid3d prolong_grid(const Grid3d& coarse, int p);

}  // namespace tme
