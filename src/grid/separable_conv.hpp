// Axis-wise (separable) periodic convolutions with a range-limited kernel —
// the software model of the MDGRAPE-4A grid convolution unit (GCU).
//
// A Kernel1d holds taps k[-cutoff .. +cutoff] (centre-indexed).  The 3D
// tensor-structured convolution of the TME (paper Eq. 10) is
//   out = sum_nu  K^{nu,x} *_x K^{nu,y} *_y K^{nu,z} *_z  in,
// evaluated one axis at a time.
#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid3d.hpp"
#include "util/simd.hpp"

namespace tme {

// Symmetric-range 1D kernel, taps indexed from -cutoff to +cutoff.
struct Kernel1d {
  int cutoff = 0;
  std::vector<double> taps;  // size 2*cutoff + 1

  double tap(int m) const { return taps[static_cast<std::size_t>(m + cutoff)]; }
};

enum class ConvAxis { kX = 0, kY = 1, kZ = 2 };

// out[n] = sum_{|m| <= cutoff} k[m] * in[n - m]  along the chosen axis
// (periodic).  in and out must have identical dims; in-place is not allowed.
//
// The inner loops run W grid elements at a time through the portable SIMD
// layer (interior columns for the x axis, contiguous x-rows for y/z); every
// element sees the same fma chain over the taps in the same order in both
// instantiations, so TME_SIMD=scalar and native are bitwise identical.  The
// 4-argument form follows the TME_SIMD environment knob; pass an explicit
// mode for A/B parity tests and benches.
void convolve_axis(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                   Grid3d& out);
void convolve_axis(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                   Grid3d& out, simd::Mode mode);

// Full separable pass: z(y(x(in))) with per-axis kernels.
Grid3d convolve_separable(const Grid3d& in, const Kernel1d& kx,
                          const Kernel1d& ky, const Kernel1d& kz);

// Accumulating tensor-structured convolution:
//   out += scale * sum over terms of separable convolutions.
struct SeparableTerm {
  Kernel1d kx, ky, kz;
};
void convolve_tensor(const Grid3d& in, const std::vector<SeparableTerm>& terms,
                     double scale, Grid3d& out);

// Brute-force range-limited dense 3D convolution (reference for tests and the
// B-spline-MSM baseline cost):  out[n] = sum_{|m_j| <= cutoff} K3[m] in[n-m].
// K3 is given as a lambda-free dense cube of (2c+1)^3 taps, x-fastest.
void convolve_dense3d(const Grid3d& in, const std::vector<double>& taps3d,
                      int cutoff, Grid3d& out);

}  // namespace tme
