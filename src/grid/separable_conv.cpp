#include "grid/separable_conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace tme {

namespace {

void check_kernel(const Kernel1d& k) {
  if (k.taps.size() != static_cast<std::size_t>(2 * k.cutoff + 1)) {
    throw std::invalid_argument("Kernel1d: taps size must be 2*cutoff+1");
  }
}

// One x-axis line of outputs.  Interior columns n in [c, nx - c) read
// contiguous source windows src[n + c - t] and run W outputs at a time; the
// wrapped boundary columns replay the identical per-element fma chain over
// the taps, so every output is bitwise invariant under W.
template <int W>
void conv_line_x(const double* src, double* dst, std::size_t nx,
                 const double* taps, std::size_t ntaps, std::size_t c,
                 const std::size_t* wrapped) {
  using V = simd::vec<double, W>;
  auto scalar_out = [&](std::size_t n) {
    const std::size_t* wrap_row = wrapped + n * ntaps;
    double acc = 0.0;
    for (std::size_t t = 0; t < ntaps; ++t) {
      acc = simd::fma1(taps[t], src[wrap_row[t]], acc);
    }
    dst[n] = acc;
  };
  const std::size_t lo = std::min(c, nx);
  const std::size_t hi = nx >= 2 * c ? nx - c : lo;
  for (std::size_t n = 0; n < lo; ++n) scalar_out(n);
  std::size_t n = lo;
  for (; n + W <= hi; n += W) {
    V acc = V::zero();
    for (std::size_t t = 0; t < ntaps; ++t) {
      acc = V::fma(V::broadcast(taps[t]), V::load(src + n + c - t), acc);
    }
    acc.store(dst + n);
  }
  if (n < hi) {
    const int tail = static_cast<int>(hi - n);
    V acc = V::zero();
    for (std::size_t t = 0; t < ntaps; ++t) {
      acc = V::fma(V::broadcast(taps[t]),
                   V::load_partial(src + n + c - t, tail), acc);
    }
    acc.store_partial(dst + n, tail);
    n = hi;
  }
  for (; n < nx; ++n) scalar_out(n);
}

// One y- or z-axis output row: every tap reads the contiguous x-row at
// src[wrap_row[t] * stride + row_off + ix], so the whole row vectorizes
// across ix with the per-element tap order unchanged.
template <int W>
void conv_strided_row(const double* src, const std::size_t* wrap_row,
                      std::size_t stride, std::size_t row_off, double* dst_row,
                      std::size_t nx, const double* taps, std::size_t ntaps) {
  using V = simd::vec<double, W>;
  std::size_t ix = 0;
  for (; ix + W <= nx; ix += W) {
    V acc = V::zero();
    for (std::size_t t = 0; t < ntaps; ++t) {
      acc = V::fma(V::broadcast(taps[t]),
                   V::load(src + wrap_row[t] * stride + row_off + ix), acc);
    }
    acc.store(dst_row + ix);
  }
  if (ix < nx) {
    const int tail = static_cast<int>(nx - ix);
    V acc = V::zero();
    for (std::size_t t = 0; t < ntaps; ++t) {
      acc = V::fma(V::broadcast(taps[t]),
                   V::load_partial(src + wrap_row[t] * stride + row_off + ix, tail),
                   acc);
    }
    acc.store_partial(dst_row + ix, tail);
  }
}

}  // namespace

void convolve_axis(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                   Grid3d& out) {
  convolve_axis(in, kernel, axis, out, simd::mode_from_env());
}

void convolve_axis(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                   Grid3d& out, simd::Mode mode) {
  check_kernel(kernel);
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_axis: dimension mismatch");
  }
  if (&in == &out) throw std::invalid_argument("convolve_axis: in-place not supported");
  const auto [nx, ny, nz] = in.dims();
  const int c = kernel.cutoff;
  const long n_axis = static_cast<long>(axis == ConvAxis::kX   ? nx
                                        : axis == ConvAxis::kY ? ny
                                                               : nz);
  if (2 * c + 1 > 2 * n_axis) {
    // Kernels wider than the periodic domain would double-count images in a
    // way the truncated hardware kernel never does; reject loudly.
    throw std::invalid_argument("convolve_axis: kernel cutoff exceeds grid period");
  }

  // Precompute wrapped source offsets for each output index along the axis.
  // wrapped[n * (2c+1) + (m+c)] = (n - m) mod n_axis.
  std::vector<std::size_t> wrapped(static_cast<std::size_t>(n_axis) *
                                   static_cast<std::size_t>(2 * c + 1));
  for (long n = 0; n < n_axis; ++n) {
    for (int m = -c; m <= c; ++m) {
      wrapped[static_cast<std::size_t>(n) * (2 * c + 1) +
              static_cast<std::size_t>(m + c)] =
          Grid3d::wrap(n - m, static_cast<std::size_t>(n_axis));
    }
  }

  const double* src = in.data();
  double* dst = out.data();
  const double* tap = kernel.taps.data();
  const std::size_t taps = static_cast<std::size_t>(2 * c + 1);
  const std::size_t uc = static_cast<std::size_t>(c);
  const bool native = mode == simd::Mode::kNative;

  switch (axis) {
    case ConvAxis::kX:
      parallel_for(0, ny * nz, [&](std::size_t line) {
        const std::size_t base = line * nx;
        if (native) {
          conv_line_x<simd::kNativeWidth>(src + base, dst + base, nx, tap, taps,
                                          uc, wrapped.data());
        } else {
          conv_line_x<1>(src + base, dst + base, nx, tap, taps, uc,
                         wrapped.data());
        }
      });
      break;
    case ConvAxis::kY:
      parallel_for(0, nz, [&](std::size_t iz) {
        const std::size_t plane = iz * ny * nx;
        for (std::size_t n = 0; n < ny; ++n) {
          const std::size_t* wrap_row = wrapped.data() + n * taps;
          if (native) {
            conv_strided_row<simd::kNativeWidth>(src + plane, wrap_row, nx, 0,
                                                 dst + plane + n * nx, nx, tap,
                                                 taps);
          } else {
            conv_strided_row<1>(src + plane, wrap_row, nx, 0,
                                dst + plane + n * nx, nx, tap, taps);
          }
        }
      });
      break;
    case ConvAxis::kZ: {
      const std::size_t plane = ny * nx;
      parallel_for(0, ny, [&](std::size_t iy) {
        for (std::size_t n = 0; n < nz; ++n) {
          const std::size_t* wrap_row = wrapped.data() + n * taps;
          if (native) {
            conv_strided_row<simd::kNativeWidth>(src, wrap_row, plane, iy * nx,
                                                 dst + n * plane + iy * nx, nx,
                                                 tap, taps);
          } else {
            conv_strided_row<1>(src, wrap_row, plane, iy * nx,
                                dst + n * plane + iy * nx, nx, tap, taps);
          }
        }
      });
      break;
    }
  }
}

Grid3d convolve_separable(const Grid3d& in, const Kernel1d& kx,
                          const Kernel1d& ky, const Kernel1d& kz) {
  Grid3d tmp1(in.dims());
  Grid3d tmp2(in.dims());
  convolve_axis(in, kx, ConvAxis::kX, tmp1);
  convolve_axis(tmp1, ky, ConvAxis::kY, tmp2);
  convolve_axis(tmp2, kz, ConvAxis::kZ, tmp1);
  return tmp1;
}

void convolve_tensor(const Grid3d& in, const std::vector<SeparableTerm>& terms,
                     double scale, Grid3d& out) {
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_tensor: dimension mismatch");
  }
  for (const SeparableTerm& term : terms) {
    const Grid3d contribution = convolve_separable(in, term.kx, term.ky, term.kz);
    const double* src = contribution.data();
    double* dst = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) dst[i] += scale * src[i];
  }
}

void convolve_dense3d(const Grid3d& in, const std::vector<double>& taps3d,
                      int cutoff, Grid3d& out) {
  const std::size_t width = static_cast<std::size_t>(2 * cutoff + 1);
  if (taps3d.size() != width * width * width) {
    throw std::invalid_argument("convolve_dense3d: taps size must be (2c+1)^3");
  }
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_dense3d: dimension mismatch");
  }
  const auto [nx, ny, nz] = in.dims();
  parallel_for(0, nz, [&](std::size_t izs) {
    const long iz = static_cast<long>(izs);
    for (long iy = 0; iy < static_cast<long>(ny); ++iy) {
      for (long ix = 0; ix < static_cast<long>(nx); ++ix) {
        double acc = 0.0;
        for (int mz = -cutoff; mz <= cutoff; ++mz) {
          for (int my = -cutoff; my <= cutoff; ++my) {
            for (int mx = -cutoff; mx <= cutoff; ++mx) {
              const double tap =
                  taps3d[(static_cast<std::size_t>(mz + cutoff) * width +
                          static_cast<std::size_t>(my + cutoff)) *
                             width +
                         static_cast<std::size_t>(mx + cutoff)];
              acc += tap * in.at_wrapped(ix - mx, iy - my, iz - mz);
            }
          }
        }
        out.at(static_cast<std::size_t>(ix), static_cast<std::size_t>(iy),
               static_cast<std::size_t>(izs)) = acc;
      }
    }
  });
}

}  // namespace tme
