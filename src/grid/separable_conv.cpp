#include "grid/separable_conv.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace tme {

namespace {

void check_kernel(const Kernel1d& k) {
  if (k.taps.size() != static_cast<std::size_t>(2 * k.cutoff + 1)) {
    throw std::invalid_argument("Kernel1d: taps size must be 2*cutoff+1");
  }
}

}  // namespace

void convolve_axis(const Grid3d& in, const Kernel1d& kernel, ConvAxis axis,
                   Grid3d& out) {
  check_kernel(kernel);
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_axis: dimension mismatch");
  }
  if (&in == &out) throw std::invalid_argument("convolve_axis: in-place not supported");
  const auto [nx, ny, nz] = in.dims();
  const int c = kernel.cutoff;
  const long n_axis = static_cast<long>(axis == ConvAxis::kX   ? nx
                                        : axis == ConvAxis::kY ? ny
                                                               : nz);
  if (2 * c + 1 > 2 * n_axis) {
    // Kernels wider than the periodic domain would double-count images in a
    // way the truncated hardware kernel never does; reject loudly.
    throw std::invalid_argument("convolve_axis: kernel cutoff exceeds grid period");
  }

  // Precompute wrapped source offsets for each output index along the axis.
  // wrapped[n * (2c+1) + (m+c)] = (n - m) mod n_axis.
  std::vector<std::size_t> wrapped(static_cast<std::size_t>(n_axis) *
                                   static_cast<std::size_t>(2 * c + 1));
  for (long n = 0; n < n_axis; ++n) {
    for (int m = -c; m <= c; ++m) {
      wrapped[static_cast<std::size_t>(n) * (2 * c + 1) +
              static_cast<std::size_t>(m + c)] =
          Grid3d::wrap(n - m, static_cast<std::size_t>(n_axis));
    }
  }

  const double* src = in.data();
  double* dst = out.data();
  const std::size_t taps = static_cast<std::size_t>(2 * c + 1);

  switch (axis) {
    case ConvAxis::kX:
      parallel_for(0, ny * nz, [&](std::size_t line) {
        const std::size_t base = line * nx;
        for (std::size_t n = 0; n < nx; ++n) {
          double acc = 0.0;
          const std::size_t* wrap_row = wrapped.data() + n * taps;
          for (std::size_t t = 0; t < taps; ++t) {
            acc += kernel.taps[t] * src[base + wrap_row[t]];
          }
          dst[base + n] = acc;
        }
      });
      break;
    case ConvAxis::kY:
      parallel_for(0, nz, [&](std::size_t iz) {
        const std::size_t plane = iz * ny * nx;
        for (std::size_t n = 0; n < ny; ++n) {
          const std::size_t* wrap_row = wrapped.data() + n * taps;
          for (std::size_t ix = 0; ix < nx; ++ix) {
            double acc = 0.0;
            for (std::size_t t = 0; t < taps; ++t) {
              acc += kernel.taps[t] * src[plane + wrap_row[t] * nx + ix];
            }
            dst[plane + n * nx + ix] = acc;
          }
        }
      });
      break;
    case ConvAxis::kZ: {
      const std::size_t plane = ny * nx;
      parallel_for(0, ny, [&](std::size_t iy) {
        for (std::size_t n = 0; n < nz; ++n) {
          const std::size_t* wrap_row = wrapped.data() + n * taps;
          for (std::size_t ix = 0; ix < nx; ++ix) {
            double acc = 0.0;
            for (std::size_t t = 0; t < taps; ++t) {
              acc += kernel.taps[t] * src[wrap_row[t] * plane + iy * nx + ix];
            }
            dst[n * plane + iy * nx + ix] = acc;
          }
        }
      });
      break;
    }
  }
}

Grid3d convolve_separable(const Grid3d& in, const Kernel1d& kx,
                          const Kernel1d& ky, const Kernel1d& kz) {
  Grid3d tmp1(in.dims());
  Grid3d tmp2(in.dims());
  convolve_axis(in, kx, ConvAxis::kX, tmp1);
  convolve_axis(tmp1, ky, ConvAxis::kY, tmp2);
  convolve_axis(tmp2, kz, ConvAxis::kZ, tmp1);
  return tmp1;
}

void convolve_tensor(const Grid3d& in, const std::vector<SeparableTerm>& terms,
                     double scale, Grid3d& out) {
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_tensor: dimension mismatch");
  }
  for (const SeparableTerm& term : terms) {
    const Grid3d contribution = convolve_separable(in, term.kx, term.ky, term.kz);
    const double* src = contribution.data();
    double* dst = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) dst[i] += scale * src[i];
  }
}

void convolve_dense3d(const Grid3d& in, const std::vector<double>& taps3d,
                      int cutoff, Grid3d& out) {
  const std::size_t width = static_cast<std::size_t>(2 * cutoff + 1);
  if (taps3d.size() != width * width * width) {
    throw std::invalid_argument("convolve_dense3d: taps size must be (2c+1)^3");
  }
  if (!(in.dims() == out.dims())) {
    throw std::invalid_argument("convolve_dense3d: dimension mismatch");
  }
  const auto [nx, ny, nz] = in.dims();
  parallel_for(0, nz, [&](std::size_t izs) {
    const long iz = static_cast<long>(izs);
    for (long iy = 0; iy < static_cast<long>(ny); ++iy) {
      for (long ix = 0; ix < static_cast<long>(nx); ++ix) {
        double acc = 0.0;
        for (int mz = -cutoff; mz <= cutoff; ++mz) {
          for (int my = -cutoff; my <= cutoff; ++my) {
            for (int mx = -cutoff; mx <= cutoff; ++mx) {
              const double tap =
                  taps3d[(static_cast<std::size_t>(mz + cutoff) * width +
                          static_cast<std::size_t>(my + cutoff)) *
                             width +
                         static_cast<std::size_t>(mx + cutoff)];
              acc += tap * in.at_wrapped(ix - mx, iy - my, iz - mz);
            }
          }
        }
        out.at(static_cast<std::size_t>(ix), static_cast<std::size_t>(iy),
               static_cast<std::size_t>(izs)) = acc;
      }
    }
  });
}

}  // namespace tme
