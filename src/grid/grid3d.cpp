#include "grid/grid3d.hpp"

#include <cmath>

namespace tme {

GridDims GridDims::halved() const {
  if (nx % 2 != 0 || ny % 2 != 0 || nz % 2 != 0) {
    throw std::invalid_argument("GridDims::halved: extents must be even");
  }
  return {nx / 2, ny / 2, nz / 2};
}

Grid3d& Grid3d::operator+=(const Grid3d& other) {
  if (!(dims_ == other.dims_)) {
    throw std::invalid_argument("Grid3d::operator+=: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Grid3d& Grid3d::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Grid3d::sum() const {
  double s = 0.0;
  for (const double v : data_) s += v;
  return s;
}

double Grid3d::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace tme
