#include "grid/transfer.hpp"

#include <vector>

#include "spline/two_scale.hpp"
#include "util/parallel.hpp"

namespace tme {

namespace {

// Restriction along one axis: out has the axis halved.
// out[m] = sum_{|k| <= p/2} J_k in[2m + k]  (periodic in `in`).
void restrict_axis(const Grid3d& in, const std::vector<double>& j, int half_p,
                   int axis, Grid3d& out) {
  const auto [nx, ny, nz] = in.dims();
  const auto [ox, oy, oz] = out.dims();
  parallel_for(0, oz, [&, nx = nx, ny = ny, nz = nz, ox = ox, oy = oy](std::size_t mz) {
    (void)ny;
    for (std::size_t my = 0; my < oy; ++my) {
      for (std::size_t mx = 0; mx < ox; ++mx) {
        double acc = 0.0;
        for (int k = -half_p; k <= half_p; ++k) {
          const double w = j[static_cast<std::size_t>(k + half_p)];
          long ix = static_cast<long>(mx), iy = static_cast<long>(my),
               iz = static_cast<long>(mz);
          switch (axis) {
            case 0: ix = 2 * ix + k; break;
            case 1: iy = 2 * iy + k; break;
            default: iz = 2 * iz + k; break;
          }
          acc += w * in.at_wrapped(ix, iy, iz);
        }
        out.at(mx, my, mz) = acc;
      }
    }
  });
  (void)nx;
  (void)nz;
}

// Prolongation along one axis: out has the axis doubled.
// out[n] = sum_m J_{n-2m} in[m]; since |n-2m| <= p/2, for each n only a few
// m contribute: m = (n - k)/2 over k of matching parity.
void prolong_axis(const Grid3d& in, const std::vector<double>& j, int half_p,
                  int axis, Grid3d& out) {
  const auto [ox, oy, oz] = out.dims();
  parallel_for(0, oz, [&, ox = ox, oy = oy](std::size_t nz_i) {
    for (std::size_t ny_i = 0; ny_i < oy; ++ny_i) {
      for (std::size_t nx_i = 0; nx_i < ox; ++nx_i) {
        const long n_axis = static_cast<long>(axis == 0   ? nx_i
                                              : axis == 1 ? ny_i
                                                          : nz_i);
        double acc = 0.0;
        for (int k = -half_p; k <= half_p; ++k) {
          if (((n_axis - k) & 1L) != 0) continue;  // n - k must be even
          const long m = (n_axis - k) / 2;
          const double w = j[static_cast<std::size_t>(k + half_p)];
          long ix = static_cast<long>(nx_i), iy = static_cast<long>(ny_i),
               iz = static_cast<long>(nz_i);
          switch (axis) {
            case 0: ix = m; break;
            case 1: iy = m; break;
            default: iz = m; break;
          }
          acc += w * in.at_wrapped(ix, iy, iz);
        }
        out.at(nx_i, ny_i, nz_i) = acc;
      }
    }
  });
}

}  // namespace

Grid3d restrict_grid(const Grid3d& fine, int p) {
  const std::vector<double> j = two_scale_coefficients(p);
  const int half_p = p / 2;
  const GridDims half = fine.dims().halved();

  Grid3d tmp_x(GridDims{half.nx, fine.dims().ny, fine.dims().nz});
  restrict_axis(fine, j, half_p, 0, tmp_x);
  Grid3d tmp_y(GridDims{half.nx, half.ny, fine.dims().nz});
  restrict_axis(tmp_x, j, half_p, 1, tmp_y);
  Grid3d out(half);
  restrict_axis(tmp_y, j, half_p, 2, out);
  return out;
}

Grid3d prolong_grid(const Grid3d& coarse, int p) {
  const std::vector<double> j = two_scale_coefficients(p);
  const int half_p = p / 2;
  const GridDims c = coarse.dims();

  Grid3d tmp_x(GridDims{2 * c.nx, c.ny, c.nz});
  prolong_axis(coarse, j, half_p, 0, tmp_x);
  Grid3d tmp_y(GridDims{2 * c.nx, 2 * c.ny, c.nz});
  prolong_axis(tmp_x, j, half_p, 1, tmp_y);
  Grid3d out(GridDims{2 * c.nx, 2 * c.ny, 2 * c.nz});
  prolong_axis(tmp_y, j, half_p, 2, out);
  return out;
}

}  // namespace tme
