// Periodic 3D scalar grid in x-fastest layout.
//
// This is the central data structure of the mesh pipeline: charge grids,
// potential grids, and every level of the TME hierarchy are Grid3d values.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tme {

struct GridDims {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;

  std::size_t total() const { return nx * ny * nz; }
  bool operator==(const GridDims&) const = default;

  // Dimensions halved (restriction target); each extent must be even.
  GridDims halved() const;
};

class Grid3d {
 public:
  Grid3d() = default;
  explicit Grid3d(GridDims dims) : dims_(dims), data_(dims.total(), 0.0) {}
  Grid3d(std::size_t nx, std::size_t ny, std::size_t nz)
      : Grid3d(GridDims{nx, ny, nz}) {}

  const GridDims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& values() { return data_; }
  const std::vector<double>& values() const { return data_; }

  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

  std::size_t index(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return (iz * dims_.ny + iy) * dims_.nx + ix;
  }
  double& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    return data_[index(ix, iy, iz)];
  }
  const double& at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return data_[index(ix, iy, iz)];
  }

  // Periodic accessor: indices may be any integer.
  double& at_wrapped(long ix, long iy, long iz) {
    return data_[index(wrap(ix, dims_.nx), wrap(iy, dims_.ny), wrap(iz, dims_.nz))];
  }
  const double& at_wrapped(long ix, long iy, long iz) const {
    return data_[index(wrap(ix, dims_.nx), wrap(iy, dims_.ny), wrap(iz, dims_.nz))];
  }

  void fill(double v) { data_.assign(data_.size(), v); }

  Grid3d& operator+=(const Grid3d& other);
  Grid3d& operator*=(double s);

  double sum() const;
  double max_abs() const;

  static std::size_t wrap(long i, std::size_t n) {
    const long m = static_cast<long>(n);
    long r = i % m;
    if (r < 0) r += m;
    return static_cast<std::size_t>(r);
  }

 private:
  GridDims dims_;
  std::vector<double> data_;
};

}  // namespace tme
