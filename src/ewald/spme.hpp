// Smooth particle mesh Ewald (Essmann et al. 1995) — the paper's baseline
// and the TME's top-level (coarsest grid) solver.
//
// Pipeline (paper Fig. 2(b)): charge assignment -> 3D FFT -> lattice Green
// function multiply -> 3D IFFT -> back interpolation.  This computes only
// the *long-range* (erf) part; callers add the short-range erfc sum and any
// exclusion corrections.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ewald/charge_assignment.hpp"
#include "ewald/reference_ewald.hpp"
#include "fft/fft3d.hpp"
#include "grid/grid3d.hpp"
#include "util/vec3.hpp"

namespace tme {

struct SpmeParams {
  int order = 6;           // B-spline order p (even)
  GridDims grid;           // N = (Nx, Ny, Nz)
  double alpha = 3.0;      // Ewald splitting parameter, nm^-1
  bool subtract_self = true;
  // Also fill CoulombResult::virial (one extra grid solve per compute).
  bool compute_virial = false;
};

class Spme {
 public:
  Spme(const Box& box, const SpmeParams& params);

  const SpmeParams& params() const { return params_; }
  const Box& box() const { return box_; }

  // Long-range energy and forces of the point-charge system.
  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const;

  // Grid-potential solve alone: grid charges -> grid potentials
  // (FFT, Green multiply, IFFT).  Exposed for the TME top level, which runs
  // exactly this on the coarsest grid (the FPGA convolution of Sec. IV.C).
  Grid3d solve_potential(const Grid3d& charge_grid) const;

  const ChargeAssigner& assigner() const { return assigner_; }

 private:
  Box box_;
  SpmeParams params_;
  ChargeAssigner assigner_;
  Fft3d fft_;
  std::vector<double> influence_;
  std::vector<double> virial_influence_;  // empty unless compute_virial
};

}  // namespace tme
