#include "ewald/long_range_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ewald/splitting.hpp"
#include "util/constants.hpp"
#include "util/simd.hpp"

namespace tme {

namespace {

obs::JsonValue json_number(double v) { return obs::JsonValue::make_number(v); }

class EwaldSolver final : public LongRangeSolver {
 public:
  EwaldSolver(const Box& box, const EwaldSolverParams& params)
      : box_(box), params_(params) {
    if (params_.n_cut <= 0) {
      params_.n_cut = reciprocal_cutoff_from_tolerance(
          params_.alpha,
          std::max({box.lengths.x, box.lengths.y, box.lengths.z}), 1e-15);
    }
  }

  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    // Long-range part only: a vanishing real-space cutoff leaves
    // reciprocal + self + background, exactly what the mesh methods compute.
    EwaldParams params;
    params.alpha = params_.alpha;
    params.n_cut = params_.n_cut;
    params.r_cut = 1e-9;
    return ewald_reference(box_, positions, charges, params);
  }

  std::string name() const override { return "ewald"; }
  double alpha() const override { return params_.alpha; }
  const Box& box() const override { return box_; }
  bool computes_virial() const override { return true; }

  obs::JsonValue describe() const override {
    obs::JsonValue d = obs::JsonValue::make_object();
    auto& obj = d.as_object();
    obj["backend"] = obs::JsonValue::make_string(name());
    obj["alpha"] = json_number(params_.alpha);
    obj["n_cut"] = json_number(params_.n_cut);
    obj["virial"] = obs::JsonValue::make_bool(true);
    obj["simd"] = simd::describe_json();
    return d;
  }

 private:
  Box box_;
  EwaldSolverParams params_;
};

class SpmeSolver final : public LongRangeSolver {
 public:
  SpmeSolver(const Box& box, const SpmeParams& params) : spme_(box, params) {}

  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges) const override {
    return spme_.compute(positions, charges);
  }

  std::string name() const override { return "spme"; }
  double alpha() const override { return spme_.params().alpha; }
  const Box& box() const override { return spme_.box(); }
  bool computes_virial() const override { return spme_.params().compute_virial; }

  obs::JsonValue describe() const override {
    const SpmeParams& p = spme_.params();
    obs::JsonValue d = obs::JsonValue::make_object();
    auto& obj = d.as_object();
    obj["backend"] = obs::JsonValue::make_string(name());
    obj["alpha"] = json_number(p.alpha);
    obj["order"] = json_number(p.order);
    obj["grid_x"] = json_number(static_cast<double>(p.grid.nx));
    obj["grid_y"] = json_number(static_cast<double>(p.grid.ny));
    obj["grid_z"] = json_number(static_cast<double>(p.grid.nz));
    obj["virial"] = obs::JsonValue::make_bool(p.compute_virial);
    obj["simd"] = simd::describe_json();
    return d;
  }

 private:
  Spme spme_;
};

}  // namespace

double finite_difference_virial(const LongRangeFactory& make, const Box& box,
                                std::span<const Vec3> positions,
                                std::span<const double> charges, double delta) {
  if (delta <= 0.0 || delta >= 0.5) {
    throw std::invalid_argument("finite_difference_virial: bad delta");
  }
  const auto energy_at = [&](double lambda) {
    Box scaled;
    scaled.lengths = box.lengths * lambda;
    std::vector<Vec3> pos(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) pos[i] = positions[i] * lambda;
    return make(scaled)->compute(pos, charges).energy;
  };
  const double e_hi = energy_at(1.0 + delta);
  const double e_lo = energy_at(1.0 - delta);
  // virial trace = -dE/dln(lambda) at lambda = 1.
  return -(e_hi - e_lo) / (2.0 * delta);
}

void add_short_range_direct(const Box& box, std::span<const Vec3> positions,
                            std::span<const double> charges, double alpha,
                            double r_cut, CoulombResult& inout) {
  if (inout.forces.size() != positions.size()) {
    throw std::invalid_argument("add_short_range_direct: size mismatch");
  }
  const double r_cut2 = r_cut * r_cut;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const Vec3 d = box.min_image_disp(positions[i], positions[j]);
      const double r2 = norm2(d);
      if (r2 >= r_cut2 || r2 == 0.0) continue;
      const double r = std::sqrt(r2);
      const double qq = constants::kCoulomb * charges[i] * charges[j];
      inout.energy_real += qq * g_short(r, alpha);
      const double fr = -qq * g_short_derivative(r, alpha) / r;
      inout.forces[i] += fr * d;
      inout.forces[j] -= fr * d;
      inout.virial += fr * r2;
    }
  }
  inout.energy = inout.energy_real + inout.energy_reciprocal +
                 inout.energy_self + inout.energy_background;
}

std::unique_ptr<LongRangeSolver> make_ewald_solver(const Box& box,
                                                   const EwaldSolverParams& params) {
  return std::make_unique<EwaldSolver>(box, params);
}

std::unique_ptr<LongRangeSolver> make_spme_solver(const Box& box,
                                                  const SpmeParams& params) {
  return std::make_unique<SpmeSolver>(box, params);
}

}  // namespace tme
