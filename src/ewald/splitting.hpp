// Ewald splitting of the Coulomb kernel (paper Eqs. 1–5).
//
//   1/r = g_S(r; alpha) + g_L(r; alpha)
//   g_S = erfc(alpha r)/r          (short range, direct sum)
//   g_L = erf(alpha r)/r           (long range, mesh)
//
// and the TME's further split of the long-range part into middle shells
//   g_l(r; alpha) = g_L(r; alpha/2^{l-1}) - g_L(r; alpha/2^l),  l = 1..L
// plus the top-level part g_L(r; alpha/2^L).
#pragma once

namespace tme {

// erfc(alpha r) / r.  Also well-defined in the r -> 0 limit? No: diverges;
// callers guard r > 0.
double g_short(double r, double alpha);

// erf(alpha r) / r, with the exact r -> 0 limit 2 alpha / sqrt(pi).
double g_long(double r, double alpha);

// Middle shell l (paper Eq. 5), with the exact r -> 0 limit.
double g_shell(double r, double alpha, int level);

// d/dr of the kernels — used for analytic pair forces:
//   F = -q_i q_j g'(r) r_hat.
double g_short_derivative(double r, double alpha);
double g_long_derivative(double r, double alpha);

// d²/dr² of g_short — needed by the Hermite segment fits of the tabulated
// pair kernel (ewald/force_table.hpp), which interpolates in r².
double g_short_second_derivative(double r, double alpha);

// Chooses alpha from the GROMACS-style condition erfc(alpha r_c) = rtol
// (bisection; the paper uses rtol = 1e-4).
double alpha_from_tolerance(double r_cut, double rtol);

// Reciprocal-space cutoff n_c from the Kolafa–Perram error factor
// exp(-(pi n_c / (alpha L))^2) <= rtol.
int reciprocal_cutoff_from_tolerance(double alpha, double box_length, double rtol);

// Neutralising-background correction for net-charged cells, in kJ/mol:
//   E_bg = -kC * pi * (sum q)^2 / (2 alpha^2 V).
// Dropping the k = 0 mode of the screened kernel (tinfoil boundary) removes
// not only the divergent 4pi/k^2 background term but also the finite
// -pi/alpha^2 part of its small-k expansion,
//   (4pi/k^2) exp(-k^2/4alpha^2) = 4pi/k^2 - pi/alpha^2 + O(k^2);
// this restores the finite part, making the total energy of a charged cell
// (point charges + uniform neutralising background) alpha-independent.
// Exactly zero for neutral systems.
double net_charge_background_energy(double q_total, double alpha, double volume);

}  // namespace tme
