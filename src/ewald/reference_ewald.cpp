#include "ewald/reference_ewald.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <mutex>
#include <stdexcept>

#include "ewald/splitting.hpp"
#include "util/constants.hpp"
#include "util/parallel.hpp"

namespace tme {

double CoulombResult::relative_force_error_against(const CoulombResult& reference) const {
  if (forces.size() != reference.forces.size()) {
    throw std::invalid_argument("relative_force_error_against: size mismatch");
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < forces.size(); ++i) {
    num += norm2(forces[i] - reference.forces[i]);
    den += norm2(reference.forces[i]);
  }
  return std::sqrt(num / den);
}

namespace {

// Real-space part: erfc-screened pair sum under the minimum-image convention.
// O(N^2) by design — the reference uses r_c up to L/2 where cell lists cannot
// reduce the pair count.
void add_real_space(const Box& box, std::span<const Vec3> pos,
                    std::span<const double> q, double alpha, double r_cut,
                    CoulombResult& out) {
  const std::size_t n = pos.size();
  const double r_cut2 = r_cut * r_cut;
  std::mutex merge_mutex;
  parallel_for_ranges(0, n, [&](std::size_t begin, std::size_t end) {
    std::vector<Vec3> f_local(n);
    double e_local = 0.0, v_local = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Vec3 d = box.min_image_disp(pos[i], pos[j]);
        const double r2 = norm2(d);
        if (r2 >= r_cut2 || r2 == 0.0) continue;
        const double r = std::sqrt(r2);
        const double qq = constants::kCoulomb * q[i] * q[j];
        e_local += qq * g_short(r, alpha);
        // F_i = -qq g_S'(r) * d/r  acting along the separation.
        const double fr = -qq * g_short_derivative(r, alpha) / r;
        const Vec3 fij = fr * d;
        f_local[i] += fij;
        f_local[j] -= fij;
        // Pair virial r_ij . F_ij.
        v_local += fr * r2;
      }
    }
    const std::lock_guard lock(merge_mutex);
    out.energy_real += e_local;
    out.virial += v_local;
    for (std::size_t i = 0; i < n; ++i) out.forces[i] += f_local[i];
  });
}

// Reciprocal part: half-space sum over n with |n| <= n_cut, factor 2 from
// inversion symmetry of real charges.
void add_reciprocal(const Box& box, std::span<const Vec3> pos,
                    std::span<const double> q, double alpha, int n_cut,
                    CoulombResult& out) {
  const std::size_t n_atoms = pos.size();
  const Vec3 l = box.lengths;
  // Per-atom phase tables e^{2 pi i n x / L} for n = 0..n_cut per axis.
  const std::size_t stride = static_cast<std::size_t>(n_cut) + 1;
  std::vector<std::complex<double>> px(n_atoms * stride), py(n_atoms * stride),
      pz(n_atoms * stride);
  parallel_for(0, n_atoms, [&](std::size_t i) {
    const Vec3 r = pos[i];
    const std::complex<double> ex{std::cos(2.0 * M_PI * r.x / l.x),
                                  std::sin(2.0 * M_PI * r.x / l.x)};
    const std::complex<double> ey{std::cos(2.0 * M_PI * r.y / l.y),
                                  std::sin(2.0 * M_PI * r.y / l.y)};
    const std::complex<double> ez{std::cos(2.0 * M_PI * r.z / l.z),
                                  std::sin(2.0 * M_PI * r.z / l.z)};
    px[i * stride] = py[i * stride] = pz[i * stride] = {1.0, 0.0};
    for (std::size_t k = 1; k < stride; ++k) {
      px[i * stride + k] = px[i * stride + k - 1] * ex;
      py[i * stride + k] = py[i * stride + k - 1] * ey;
      pz[i * stride + k] = pz[i * stride + k - 1] * ez;
    }
  });

  // Enumerate the half space: nx > 0, or nx == 0 && ny > 0, or
  // nx == ny == 0 && nz > 0.
  struct KVec {
    int nx, ny, nz;
  };
  std::vector<KVec> kvecs;
  const long nc2 = static_cast<long>(n_cut) * n_cut;
  for (int nx = 0; nx <= n_cut; ++nx) {
    for (int ny = (nx == 0 ? 0 : -n_cut); ny <= n_cut; ++ny) {
      for (int nz = ((nx == 0 && ny == 0) ? 1 : -n_cut); nz <= n_cut; ++nz) {
        if (static_cast<long>(nx) * nx + static_cast<long>(ny) * ny +
                static_cast<long>(nz) * nz >
            nc2)
          continue;
        if (nx == 0 && ny == 0 && nz <= 0) continue;
        if (nx == 0 && ny < 0) continue;
        kvecs.push_back({nx, ny, nz});
      }
    }
  }

  const double volume = box.volume();
  const double quarter_inv_a2 = 1.0 / (4.0 * alpha * alpha);
  std::mutex merge_mutex;
  parallel_for_ranges(0, kvecs.size(), [&](std::size_t begin, std::size_t end) {
    std::vector<Vec3> f_local(n_atoms);
    double e_local = 0.0, v_local = 0.0;
    std::vector<std::complex<double>> phase(n_atoms);
    for (std::size_t kv = begin; kv < end; ++kv) {
      const auto [nx, ny, nz] = kvecs[kv];
      const Vec3 k{2.0 * M_PI * nx / l.x, 2.0 * M_PI * ny / l.y,
                   2.0 * M_PI * nz / l.z};
      const double k2 = norm2(k);
      // S(k) = sum q_i e^{i k . r_i}; phases for negative n via conjugate.
      std::complex<double> s{0.0, 0.0};
      for (std::size_t i = 0; i < n_atoms; ++i) {
        const std::complex<double> cx = px[i * stride + static_cast<std::size_t>(nx)];
        const std::complex<double> cy =
            ny >= 0 ? py[i * stride + static_cast<std::size_t>(ny)]
                    : std::conj(py[i * stride + static_cast<std::size_t>(-ny)]);
        const std::complex<double> cz =
            nz >= 0 ? pz[i * stride + static_cast<std::size_t>(nz)]
                    : std::conj(pz[i * stride + static_cast<std::size_t>(-nz)]);
        const std::complex<double> ph = cx * cy * cz;
        phase[i] = ph;
        s += q[i] * ph;
      }
      // Half-space factor 2.
      const double ak = 2.0 * constants::kCoulomb * (4.0 * M_PI / k2) *
                        std::exp(-k2 * quarter_inv_a2) / (2.0 * volume);
      e_local += ak * std::norm(s);
      // Virial trace of one mode: E_k (1 - k^2 / (2 alpha^2)) — the
      // lambda-derivative of E_k under uniform box + coordinate scaling at
      // fixed alpha (the standard Ewald reciprocal virial, traced).
      v_local += ak * std::norm(s) * (1.0 - 2.0 * k2 * quarter_inv_a2);
      // F_i = ak * 2 q_i Im(S^* e^{i k r_i}) k   (derived from d|S|^2/dr_i).
      for (std::size_t i = 0; i < n_atoms; ++i) {
        const double im = (std::conj(s) * phase[i]).imag();
        f_local[i] += (ak * 2.0 * q[i] * im) * k;
      }
    }
    const std::lock_guard lock(merge_mutex);
    out.energy_reciprocal += e_local;
    out.virial += v_local;
    for (std::size_t i = 0; i < n_atoms; ++i) out.forces[i] += f_local[i];
  });
}

}  // namespace

CoulombResult ewald_reference(const Box& box, std::span<const Vec3> positions,
                              std::span<const double> charges,
                              const EwaldParams& params) {
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ewald_reference: size mismatch");
  }
  const double l_min =
      std::min({box.lengths.x, box.lengths.y, box.lengths.z});
  double r_cut = params.r_cut > 0.0 ? params.r_cut : 0.5 * l_min;
  if (r_cut > 0.5 * l_min + 1e-12) {
    throw std::invalid_argument("ewald_reference: r_cut exceeds half the box");
  }
  int n_cut = params.n_cut;
  if (n_cut <= 0) {
    n_cut = reciprocal_cutoff_from_tolerance(
        params.alpha, std::max({box.lengths.x, box.lengths.y, box.lengths.z}),
        1e-15);
  }

  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});

  // Wrap once so the phase recurrences and minimum image agree.
  std::vector<Vec3> wrapped(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) wrapped[i] = box.wrap(positions[i]);

  add_real_space(box, wrapped, charges, params.alpha, r_cut, out);
  add_reciprocal(box, wrapped, charges, params.alpha, n_cut, out);

  double q2 = 0.0, q_total = 0.0;
  for (const double qi : charges) {
    q2 += qi * qi;
    q_total += qi;
  }
  // Self term: volume-independent, so it contributes nothing to the virial.
  out.energy_self = -constants::kCoulomb * params.alpha / std::sqrt(M_PI) * q2;
  out.energy_background =
      net_charge_background_energy(q_total, params.alpha, box.volume());
  // E_bg ~ 1/V under uniform scaling, so its virial-trace share is 3 E_bg.
  out.virial += 3.0 * out.energy_background;

  out.energy = out.energy_real + out.energy_reciprocal + out.energy_self +
               out.energy_background;
  return out;
}

double direct_lattice_energy(const Box& box, std::span<const Vec3> positions,
                             std::span<const double> charges, int shells) {
  double energy = 0.0;
  const std::size_t n = positions.size();
  for (int sx = -shells; sx <= shells; ++sx) {
    for (int sy = -shells; sy <= shells; ++sy) {
      for (int sz = -shells; sz <= shells; ++sz) {
        const Vec3 shift{sx * box.lengths.x, sy * box.lengths.y, sz * box.lengths.z};
        const bool home = sx == 0 && sy == 0 && sz == 0;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            if (home && i == j) continue;
            const Vec3 d = positions[i] - positions[j] - shift;
            energy += 0.5 * constants::kCoulomb * charges[i] * charges[j] / norm(d);
          }
        }
      }
    }
  }
  return energy;
}

}  // namespace tme
