#include "ewald/splitting.hpp"

#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"

namespace tme {

namespace {
constexpr double kTwoOverSqrtPi = 1.1283791670955126;  // 2/sqrt(pi)
}

double g_short(double r, double alpha) {
  if (r <= 0.0) throw std::invalid_argument("g_short: r must be positive");
  return std::erfc(alpha * r) / r;
}

double g_long(double r, double alpha) {
  if (r < 0.0) throw std::invalid_argument("g_long: r must be non-negative");
  if (r < 1e-12) {
    // erf(x)/x -> 2/sqrt(pi) * alpha as r -> 0.
    return kTwoOverSqrtPi * alpha;
  }
  return std::erf(alpha * r) / r;
}

double g_shell(double r, double alpha, int level) {
  if (level < 1) throw std::invalid_argument("g_shell: level must be >= 1");
  const double a_hi = alpha / std::ldexp(1.0, level - 1);  // alpha / 2^{l-1}
  const double a_lo = alpha / std::ldexp(1.0, level);      // alpha / 2^l
  return g_long(r, a_hi) - g_long(r, a_lo);
}

double g_short_derivative(double r, double alpha) {
  if (r <= 0.0) throw std::invalid_argument("g_short_derivative: r must be positive");
  const double ar = alpha * r;
  return -std::erfc(ar) / (r * r) - kTwoOverSqrtPi * alpha * std::exp(-ar * ar) / r;
}

double g_short_second_derivative(double r, double alpha) {
  if (r <= 0.0) {
    throw std::invalid_argument("g_short_second_derivative: r must be positive");
  }
  const double ar = alpha * r;
  const double gauss = kTwoOverSqrtPi * alpha * std::exp(-ar * ar);
  return 2.0 * std::erfc(ar) / (r * r * r) + 2.0 * gauss / (r * r) +
         2.0 * alpha * alpha * gauss;
}

double g_long_derivative(double r, double alpha) {
  if (r <= 0.0) throw std::invalid_argument("g_long_derivative: r must be positive");
  const double ar = alpha * r;
  return -std::erf(ar) / (r * r) + kTwoOverSqrtPi * alpha * std::exp(-ar * ar) / r;
}

double alpha_from_tolerance(double r_cut, double rtol) {
  if (r_cut <= 0.0 || rtol <= 0.0 || rtol >= 1.0) {
    throw std::invalid_argument("alpha_from_tolerance: bad arguments");
  }
  // erfc is monotone decreasing; bisect on alpha * r_cut.
  double lo = 0.0, hi = 30.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (std::erfc(mid) > rtol ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi) / r_cut;
}

int reciprocal_cutoff_from_tolerance(double alpha, double box_length, double rtol) {
  if (alpha <= 0.0 || box_length <= 0.0 || rtol <= 0.0 || rtol >= 1.0) {
    throw std::invalid_argument("reciprocal_cutoff_from_tolerance: bad arguments");
  }
  // exp(-(pi n / (alpha L))^2) <= rtol  =>  n >= alpha L sqrt(-ln rtol) / pi.
  const double n = alpha * box_length * std::sqrt(-std::log(rtol)) / M_PI;
  return static_cast<int>(std::ceil(n));
}

double net_charge_background_energy(double q_total, double alpha, double volume) {
  if (alpha <= 0.0 || volume <= 0.0) {
    throw std::invalid_argument("net_charge_background_energy: bad arguments");
  }
  return -constants::kCoulomb * M_PI * q_total * q_total /
         (2.0 * alpha * alpha * volume);
}

}  // namespace tme
