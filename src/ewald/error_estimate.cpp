#include "ewald/error_estimate.hpp"

#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"

namespace tme {

double ewald_real_space_rms_force_error(double q2_sum, std::size_t n_atoms,
                                        double volume, double r_cut,
                                        double alpha) {
  if (n_atoms == 0 || volume <= 0.0 || r_cut <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("ewald_real_space_rms_force_error: bad arguments");
  }
  return 2.0 * constants::kCoulomb * q2_sum *
         std::exp(-alpha * alpha * r_cut * r_cut) /
         std::sqrt(static_cast<double>(n_atoms) * r_cut * volume);
}

double ewald_reciprocal_rms_force_error(double q2_sum, std::size_t n_atoms,
                                        double volume, double box_length,
                                        double alpha, int n_cut) {
  if (n_atoms == 0 || volume <= 0.0 || box_length <= 0.0 || alpha <= 0.0 ||
      n_cut < 1) {
    throw std::invalid_argument(
        "ewald_reciprocal_rms_force_error: bad arguments");
  }
  const double k_cut = 2.0 * M_PI * static_cast<double>(n_cut) / box_length;
  return 2.0 * std::sqrt(2.0) * constants::kCoulomb * q2_sum * alpha *
         std::exp(-k_cut * k_cut / (4.0 * alpha * alpha)) /
         std::sqrt(static_cast<double>(n_atoms) * volume * k_cut);
}

}  // namespace tme
