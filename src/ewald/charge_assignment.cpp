#include "ewald/charge_assignment.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "spline/bspline.hpp"
#include "util/parallel.hpp"

namespace tme {

ChargeAssigner::ChargeAssigner(const Box& box, GridDims dims, int order)
    : box_(box), dims_(dims), p_(order) {
  if (order < 2) throw std::invalid_argument("ChargeAssigner: order must be >= 2");
  if (dims.total() == 0) throw std::invalid_argument("ChargeAssigner: empty grid");
  h_ = {box.lengths.x / static_cast<double>(dims.nx),
        box.lengths.y / static_cast<double>(dims.ny),
        box.lengths.z / static_cast<double>(dims.nz)};
}

void ChargeAssigner::spread_range(Grid3d& grid, std::span<const Vec3> positions,
                                  std::span<const double> charges,
                                  std::size_t first, std::size_t last) const {
  const int p = p_;
  std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
  for (std::size_t i = first; i < last; ++i) {
    const Vec3 u = hadamard_div(box_.wrap(positions[i]), h_);
    const long mx0 = bspline_weights_central(p, u.x, wx, {});
    const long my0 = bspline_weights_central(p, u.y, wy, {});
    const long mz0 = bspline_weights_central(p, u.z, wz, {});
    const double q = charges[i];
    for (int kz = 0; kz < p; ++kz) {
      const double qz = q * wz[static_cast<std::size_t>(kz)];
      const std::size_t iz = Grid3d::wrap(mz0 + kz, dims_.nz);
      for (int ky = 0; ky < p; ++ky) {
        const double qyz = qz * wy[static_cast<std::size_t>(ky)];
        const std::size_t iy = Grid3d::wrap(my0 + ky, dims_.ny);
        const std::size_t row = (iz * dims_.ny + iy) * dims_.nx;
        for (int kx = 0; kx < p; ++kx) {
          const std::size_t ix = Grid3d::wrap(mx0 + kx, dims_.nx);
          grid[row + ix] += qyz * wx[static_cast<std::size_t>(kx)];
        }
      }
    }
  }
}

Grid3d ChargeAssigner::assign(std::span<const Vec3> positions,
                              std::span<const double> charges,
                              ThreadPool* pool_ptr) const {
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ChargeAssigner::assign: size mismatch");
  }
  TME_COUNTER_ADD("charge_assignment/assign_calls", 1);
  Grid3d grid(dims_);
  const std::size_t n = positions.size();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : global_pool();
  // The hardware accumulates through the global memory's atomic-add write
  // mode; in software each batch scatters into a private scratch grid and
  // the grids are summed point-wise in fixed batch order (deterministic per
  // pool size).  The scratch count is capped to bound the extra memory on
  // wide machines.
  constexpr std::size_t kMaxScratchGrids = 16;
  const std::size_t nb = std::min<std::size_t>(
      {ThreadPool::in_parallel_region() ? std::size_t{1} : pool.concurrency(),
       std::max<std::size_t>(n, 1), kMaxScratchGrids});
  if (nb <= 1) {
    spread_range(grid, positions, charges, 0, n);
    return grid;
  }
  const std::size_t chunk = (n + nb - 1) / nb;
  std::vector<Grid3d> scratch(nb);
  parallel_for(pool, 0, nb, [&](std::size_t b) {
    scratch[b] = Grid3d(dims_);
    spread_range(scratch[b], positions, charges, b * chunk,
                 std::min(b * chunk + chunk, n));
  });
  parallel_for(pool, 0, grid.size(), [&](std::size_t g) {
    double acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b) acc += scratch[b][g];
    grid[g] = acc;
  });
  return grid;
}

double ChargeAssigner::back_interpolate(const Grid3d& potential,
                                        std::span<const Vec3> positions,
                                        std::span<const double> charges,
                                        std::vector<Vec3>* forces,
                                        std::vector<double>* phi_out) const {
  if (!(potential.dims() == dims_)) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: grid mismatch");
  }
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: size mismatch");
  }
  if (forces != nullptr && forces->size() != positions.size()) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: forces size");
  }
  if (phi_out != nullptr) phi_out->assign(positions.size(), 0.0);

  const int p = p_;
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for_ranges(0, positions.size(), [&](std::size_t begin, std::size_t end) {
    std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
    std::vector<double> dx(wx), dy(wx), dz(wx);
    double local_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 u = hadamard_div(box_.wrap(positions[i]), h_);
      const long mx0 = bspline_weights_central(p, u.x, wx, dx);
      const long my0 = bspline_weights_central(p, u.y, wy, dy);
      const long mz0 = bspline_weights_central(p, u.z, wz, dz);
      double phi = 0.0;
      Vec3 grad{};  // d phi / d u (grid units)
      for (int kz = 0; kz < p; ++kz) {
        const std::size_t iz = Grid3d::wrap(mz0 + kz, dims_.nz);
        const double vz = wz[static_cast<std::size_t>(kz)];
        const double gz = dz[static_cast<std::size_t>(kz)];
        for (int ky = 0; ky < p; ++ky) {
          const std::size_t iy = Grid3d::wrap(my0 + ky, dims_.ny);
          const double vy = wy[static_cast<std::size_t>(ky)];
          const double gy = dy[static_cast<std::size_t>(ky)];
          const std::size_t row = (iz * dims_.ny + iy) * dims_.nx;
          double line_v = 0.0, line_d = 0.0;
          for (int kx = 0; kx < p; ++kx) {
            const std::size_t ix = Grid3d::wrap(mx0 + kx, dims_.nx);
            const double pm = potential[row + ix];
            line_v += pm * wx[static_cast<std::size_t>(kx)];
            line_d += pm * dx[static_cast<std::size_t>(kx)];
          }
          phi += line_v * vy * vz;
          grad.x += line_d * vy * vz;
          grad.y += line_v * gy * vz;
          grad.z += line_v * vy * gz;
        }
      }
      if (phi_out != nullptr) (*phi_out)[i] = phi;
      local_sum += charges[i] * phi;
      if (forces != nullptr) {
        const double q = charges[i];
        (*forces)[i] += {-q * grad.x / h_.x, -q * grad.y / h_.y, -q * grad.z / h_.z};
      }
    }
    const std::lock_guard lock(sum_mutex);
    total += local_sum;
  });
  return total;
}

}  // namespace tme
