#include "ewald/charge_assignment.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "spline/bspline.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace tme {

namespace {

// Accumulate one x-line of the P×P×P stencil into the grid:
//   grid_row[wrap(mx0 + k)] = fma(qyz, wx[k], grid_row[wrap(mx0 + k)]).
// When the x-window stays inside [0, nx) the stores are contiguous and run W
// elements at a time; the wrapped fallback applies the identical per-element
// fma, so both paths — and both W instantiations — are bitwise interchangeable.
template <int W>
void spread_line(double* grid_row, long mx0, std::size_t nx, int p, double qyz,
                 const double* wx) {
  using V = simd::vec<double, W>;
  const std::size_t ix0 = Grid3d::wrap(mx0, nx);
  if (ix0 + static_cast<std::size_t>(p) <= nx) {
    double* g = grid_row + ix0;
    const V qv = V::broadcast(qyz);
    int k = 0;
    for (; k + W <= p; k += W) {
      V::fma(qv, V::load(wx + k), V::load(g + k)).store(g + k);
    }
    if (k < p) {
      const int tail = p - k;
      V::fma(qv, V::load_partial(wx + k, tail), V::load_partial(g + k, tail))
          .store_partial(g + k, tail);
    }
  } else {
    for (int k = 0; k < p; ++k) {
      double& cell = grid_row[Grid3d::wrap(mx0 + k, nx)];
      cell = simd::fma1(qyz, wx[k], cell);
    }
  }
}

// Dot the x-line of grid values against the value and derivative weights:
//   line_v = sum_k pm[k] * wx[k],  line_d = sum_k pm[k] * dx[k].
// Lane partials are combined with vec::reduce_add's fixed tree, so W > 1
// differs from the scalar twin by reassociation rounding only (the gather
// relaxation documented in util/simd.hpp).
template <int W>
void gather_line(const double* pm, const double* wx, const double* dx, int p,
                 double& line_v, double& line_d) {
  using V = simd::vec<double, W>;
  V acc_v = V::zero();
  V acc_d = V::zero();
  int k = 0;
  for (; k + W <= p; k += W) {
    const V pv = V::load(pm + k);
    acc_v = V::fma(pv, V::load(wx + k), acc_v);
    acc_d = V::fma(pv, V::load(dx + k), acc_d);
  }
  if (k < p) {
    const int tail = p - k;
    const V pv = V::load_partial(pm + k, tail);
    acc_v = V::fma(pv, V::load_partial(wx + k, tail), acc_v);
    acc_d = V::fma(pv, V::load_partial(dx + k, tail), acc_d);
  }
  line_v = acc_v.reduce_add();
  line_d = acc_d.reduce_add();
}

// Wrapped fallback for gather_line — same fma chain as the W = 1 path.
void gather_line_wrapped(const double* row, long mx0, std::size_t nx,
                         const double* wx, const double* dx, int p,
                         double& line_v, double& line_d) {
  double acc_v = 0.0, acc_d = 0.0;
  for (int k = 0; k < p; ++k) {
    const double pm = row[Grid3d::wrap(mx0 + k, nx)];
    acc_v = simd::fma1(pm, wx[k], acc_v);
    acc_d = simd::fma1(pm, dx[k], acc_d);
  }
  line_v = acc_v;
  line_d = acc_d;
}

}  // namespace

ChargeAssigner::ChargeAssigner(const Box& box, GridDims dims, int order)
    : box_(box), dims_(dims), p_(order) {
  if (order < 2) throw std::invalid_argument("ChargeAssigner: order must be >= 2");
  if (dims.total() == 0) throw std::invalid_argument("ChargeAssigner: empty grid");
  h_ = {box.lengths.x / static_cast<double>(dims.nx),
        box.lengths.y / static_cast<double>(dims.ny),
        box.lengths.z / static_cast<double>(dims.nz)};
}

void ChargeAssigner::spread_range(Grid3d& grid, std::span<const Vec3> positions,
                                  std::span<const double> charges,
                                  std::size_t first, std::size_t last) const {
  const int p = p_;
  const int width = simd::lanes(simd_mode_);
  double* gdata = grid.data();
  std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
  for (std::size_t i = first; i < last; ++i) {
    const Vec3 u = hadamard_div(box_.wrap(positions[i]), h_);
    const long mx0 = bspline_weights_central(p, u.x, wx, {});
    const long my0 = bspline_weights_central(p, u.y, wy, {});
    const long mz0 = bspline_weights_central(p, u.z, wz, {});
    const double q = charges[i];
    for (int kz = 0; kz < p; ++kz) {
      const double qz = q * wz[static_cast<std::size_t>(kz)];
      const std::size_t iz = Grid3d::wrap(mz0 + kz, dims_.nz);
      for (int ky = 0; ky < p; ++ky) {
        const double qyz = qz * wy[static_cast<std::size_t>(ky)];
        const std::size_t iy = Grid3d::wrap(my0 + ky, dims_.ny);
        double* row = gdata + (iz * dims_.ny + iy) * dims_.nx;
        if (width > 1) {
          spread_line<simd::kNativeWidth>(row, mx0, dims_.nx, p, qyz, wx.data());
        } else {
          spread_line<1>(row, mx0, dims_.nx, p, qyz, wx.data());
        }
      }
    }
  }
}

Grid3d ChargeAssigner::assign(std::span<const Vec3> positions,
                              std::span<const double> charges,
                              ThreadPool* pool_ptr) const {
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ChargeAssigner::assign: size mismatch");
  }
  TME_COUNTER_ADD("charge_assignment/assign_calls", 1);
  Grid3d grid(dims_);
  const std::size_t n = positions.size();
  ThreadPool& pool = pool_ptr != nullptr ? *pool_ptr : global_pool();
  // The hardware accumulates through the global memory's atomic-add write
  // mode; in software each batch scatters into a private scratch grid and
  // the grids are summed point-wise in fixed batch order (deterministic per
  // pool size).  The scratch count is capped to bound the extra memory on
  // wide machines.
  constexpr std::size_t kMaxScratchGrids = 16;
  const std::size_t nb = std::min<std::size_t>(
      {ThreadPool::in_parallel_region() ? std::size_t{1} : pool.concurrency(),
       std::max<std::size_t>(n, 1), kMaxScratchGrids});
  if (nb <= 1) {
    spread_range(grid, positions, charges, 0, n);
    return grid;
  }
  const std::size_t chunk = (n + nb - 1) / nb;
  std::vector<Grid3d> scratch(nb);
  parallel_for(pool, 0, nb, [&](std::size_t b) {
    scratch[b] = Grid3d(dims_);
    spread_range(scratch[b], positions, charges, b * chunk,
                 std::min(b * chunk + chunk, n));
  });
  parallel_for(pool, 0, grid.size(), [&](std::size_t g) {
    double acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b) acc += scratch[b][g];
    grid[g] = acc;
  });
  return grid;
}

double ChargeAssigner::back_interpolate(const Grid3d& potential,
                                        std::span<const Vec3> positions,
                                        std::span<const double> charges,
                                        std::vector<Vec3>* forces,
                                        std::vector<double>* phi_out) const {
  if (!(potential.dims() == dims_)) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: grid mismatch");
  }
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: size mismatch");
  }
  if (forces != nullptr && forces->size() != positions.size()) {
    throw std::invalid_argument("ChargeAssigner::back_interpolate: forces size");
  }
  if (phi_out != nullptr) phi_out->assign(positions.size(), 0.0);

  const int p = p_;
  const int width = simd::lanes(simd_mode_);
  const double* pdata = potential.data();
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for_ranges(0, positions.size(), [&](std::size_t begin, std::size_t end) {
    std::vector<double> wx(static_cast<std::size_t>(p)), wy(wx), wz(wx);
    std::vector<double> dx(wx), dy(wx), dz(wx);
    double local_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 u = hadamard_div(box_.wrap(positions[i]), h_);
      const long mx0 = bspline_weights_central(p, u.x, wx, dx);
      const long my0 = bspline_weights_central(p, u.y, wy, dy);
      const long mz0 = bspline_weights_central(p, u.z, wz, dz);
      double phi = 0.0;
      Vec3 grad{};  // d phi / d u (grid units)
      const std::size_t ix0 = Grid3d::wrap(mx0, dims_.nx);
      const bool contiguous = ix0 + static_cast<std::size_t>(p) <= dims_.nx;
      for (int kz = 0; kz < p; ++kz) {
        const std::size_t iz = Grid3d::wrap(mz0 + kz, dims_.nz);
        const double vz = wz[static_cast<std::size_t>(kz)];
        const double gz = dz[static_cast<std::size_t>(kz)];
        for (int ky = 0; ky < p; ++ky) {
          const std::size_t iy = Grid3d::wrap(my0 + ky, dims_.ny);
          const double vy = wy[static_cast<std::size_t>(ky)];
          const double gy = dy[static_cast<std::size_t>(ky)];
          const double* row = pdata + (iz * dims_.ny + iy) * dims_.nx;
          double line_v = 0.0, line_d = 0.0;
          if (!contiguous) {
            gather_line_wrapped(row, mx0, dims_.nx, wx.data(), dx.data(), p,
                                line_v, line_d);
          } else if (width > 1) {
            gather_line<simd::kNativeWidth>(row + ix0, wx.data(), dx.data(), p,
                                            line_v, line_d);
          } else {
            gather_line<1>(row + ix0, wx.data(), dx.data(), p, line_v, line_d);
          }
          phi += line_v * vy * vz;
          grad.x += line_d * vy * vz;
          grad.y += line_v * gy * vz;
          grad.z += line_v * vy * gz;
        }
      }
      if (phi_out != nullptr) (*phi_out)[i] = phi;
      local_sum += charges[i] * phi;
      if (forces != nullptr) {
        const double q = charges[i];
        (*forces)[i] += {-q * grad.x / h_.x, -q * grad.y / h_.y, -q * grad.z / h_.z};
      }
    }
    const std::lock_guard lock(sum_mutex);
    total += local_sum;
  });
  return total;
}

}  // namespace tme
