// Classical Ewald summation — the accuracy reference of the paper
// (Table 1 computes relative force errors of SPME and TME against this).
//
// Energy (kJ/mol) and forces (kJ mol^-1 nm^-1) of N point charges in a
// periodic orthorhombic box:
//   E = E_real + E_reciprocal + E_self
//   E_real       = kC sum_{i<j, r<r_c} q_i q_j erfc(alpha r)/r   (minimum image)
//   E_reciprocal = kC/(2V) sum_{k != 0, |n| <= n_c} (4pi/k^2) e^{-k^2/4a^2} |S(k)|^2
//   E_self       = -kC alpha/sqrt(pi) sum q_i^2
// The paper's reference uses r_c = L/2 and n_c = 22 so both truncation error
// factors fall below 1e-15.
#pragma once

#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace tme {

struct EwaldParams {
  double alpha = 3.0;    // nm^-1
  double r_cut = 0.0;    // real-space cutoff; 0 means L_min/2
  int n_cut = 0;         // reciprocal cutoff |n| <= n_cut; 0 means auto (1e-15)
};

struct CoulombResult {
  double energy = 0.0;                  // kJ/mol
  double energy_real = 0.0;
  double energy_reciprocal = 0.0;
  double energy_self = 0.0;
  double energy_background = 0.0;       // net-charge neutralising background
  std::vector<Vec3> forces;             // kJ mol^-1 nm^-1

  // Trace of the Coulomb virial tensor (kJ/mol), with the convention
  // P V = N k T + virial / 3.  Filled analytically by ewald_reference and by
  // Spme when SpmeParams::compute_virial is set; other solvers leave it 0
  // (their LongRangeSolver adapters report computes_virial() = false).
  double virial = 0.0;

  // Root-sum-square relative force deviation against a reference
  // (the paper's Table 1 metric).
  double relative_force_error_against(const CoulombResult& reference) const;
};

// Full Ewald sum (threaded).  Positions may be outside the box; they are
// wrapped internally.
CoulombResult ewald_reference(const Box& box, std::span<const Vec3> positions,
                              std::span<const double> charges,
                              const EwaldParams& params);

// Direct real-space lattice sum over periodic images out to `shells` image
// layers of the *bare* 1/r kernel.  Converges only for special geometries
// (used by the Madelung tests/example, where shell-wise charge neutrality
// makes it conditionally convergent); not for production use.
double direct_lattice_energy(const Box& box, std::span<const Vec3> positions,
                             std::span<const double> charges, int shells);

}  // namespace tme
