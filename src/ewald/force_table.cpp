#include "ewald/force_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ewald/splitting.hpp"

namespace tme {

namespace {

// Kernel values and their d/ds derivatives (s = r²) at one node.
struct Node {
  double energy, denergy_ds;
  double force, dforce_ds;
};

Node eval_node(double s, double alpha) {
  const double r = std::sqrt(s);
  const double g = g_short(r, alpha);
  const double dg = g_short_derivative(r, alpha);
  const double d2g = g_short_second_derivative(r, alpha);
  // dE/ds = g'(r) dr/ds with dr/ds = 1/(2r);
  // G(s) = -g'(r)/r, dG/ds = (g'(r) - r g''(r)) / (2 r³).
  return {g, dg / (2.0 * r), -dg / r, (dg - r * d2g) / (2.0 * r * r * r)};
}

// Cubic Hermite coefficients on t in [0,1] for values f0,f1 and
// t-derivatives m0,m1 (i.e. already scaled by the segment width).
void hermite(double f0, double m0, double f1, double m1, double* c) {
  c[0] = f0;
  c[1] = m0;
  c[2] = -3.0 * f0 + 3.0 * f1 - 2.0 * m0 - m1;
  c[3] = 2.0 * f0 - 2.0 * f1 + m0 + m1;
}

}  // namespace

ForceTable::ForceTable(double alpha, double r_min, double r_max,
                       std::size_t segments)
    : alpha_(alpha), r_min_(r_min), r_max_(r_max), segments_(segments) {
  if (alpha <= 0.0 || r_min <= 0.0 || r_min >= r_max || segments < 2) {
    throw std::invalid_argument("ForceTable: bad arguments");
  }
  s_min_ = r_min * r_min;
  s_max_ = r_max * r_max;
  const double ds = (s_max_ - s_min_) / static_cast<double>(segments);
  inv_ds_ = 1.0 / ds;
  coeff_.resize(8 * segments);

  Node lo = eval_node(s_min_, alpha);
  for (std::size_t k = 0; k < segments; ++k) {
    const double s1 = s_min_ + static_cast<double>(k + 1) * ds;
    const Node hi = eval_node(std::min(s1, s_max_), alpha);
    double* c = coeff_.data() + 8 * k;
    hermite(lo.energy, lo.denergy_ds * ds, hi.energy, hi.denergy_ds * ds, c);
    hermite(lo.force, lo.dforce_ds * ds, hi.force, hi.dforce_ds * ds, c + 4);
    lo = hi;
  }

  // Measured accuracy bound: probe the interior of every segment.
  for (std::size_t k = 0; k < segments; ++k) {
    for (const double t : {0.2, 0.5, 0.8}) {
      const double s = s_min_ + (static_cast<double>(k) + t) * ds;
      const Sample tab = lookup(s);
      const Sample ref = analytic(s);
      err_energy_ = std::max(
          err_energy_, std::abs(tab.energy - ref.energy) / std::abs(ref.energy));
      err_force_ =
          std::max(err_force_, std::abs(tab.force_over_r - ref.force_over_r) /
                                   std::abs(ref.force_over_r));
    }
  }
}

ForceTable::Sample ForceTable::analytic(double r2) const {
  const double r = std::sqrt(r2);
  return {g_short(r, alpha_), -g_short_derivative(r, alpha_) / r};
}

}  // namespace tme
