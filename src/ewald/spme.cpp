#include "ewald/spme.hpp"

#include <cmath>
#include <stdexcept>

#include "ewald/greens_function.hpp"
#include "ewald/splitting.hpp"
#include "obs/metrics.hpp"
#include "util/constants.hpp"
#include "util/parallel.hpp"

namespace tme {

Spme::Spme(const Box& box, const SpmeParams& params)
    : box_(box),
      params_(params),
      assigner_(box, params.grid, params.order),
      fft_(params.grid.nx, params.grid.ny, params.grid.nz),
      influence_(spme_influence(box, params.grid, params.order, params.alpha)) {
  if (params.order % 2 != 0) {
    throw std::invalid_argument("Spme: B-spline order must be even");
  }
  if (params.compute_virial) {
    virial_influence_ =
        spme_virial_influence(box, params.grid, params.order, params.alpha);
  }
}

Grid3d Spme::solve_potential(const Grid3d& charge_grid) const {
  if (!(charge_grid.dims() == params_.grid)) {
    throw std::invalid_argument("Spme::solve_potential: grid mismatch");
  }
  TME_PHASE("spme_solve");
  TME_GAUGE_SET("spme/grid_points", params_.grid.total());
  std::vector<std::complex<double>> spectrum;
  {
    TME_PHASE("fft_forward");
    spectrum = fft_.forward_real(charge_grid.values());
  }
  {
    TME_PHASE("influence_apply");
    // Element-wise, so threading cannot change the result bits.
    parallel_for(0, spectrum.size(),
                 [&](std::size_t i) { spectrum[i] *= influence_[i]; });
  }
  Grid3d potential(params_.grid);
  {
    TME_PHASE("fft_inverse");
    potential.values() = fft_.inverse_to_real(std::move(spectrum));
  }
  return potential;
}

CoulombResult Spme::compute(std::span<const Vec3> positions,
                            std::span<const double> charges) const {
  TME_PHASE("spme");
  TME_COUNTER_ADD("spme/compute_calls", 1);
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});

  Grid3d q_grid;
  {
    TME_PHASE("charge_assignment");
    q_grid = assigner_.assign(positions, charges);
  }
  const Grid3d potential = solve_potential(q_grid);
  double q_phi = 0.0;
  {
    TME_PHASE("back_interpolation");
    q_phi =
        assigner_.back_interpolate(potential, positions, charges, &out.forces);
  }
  out.energy_reciprocal = 0.5 * q_phi;

  if (params_.compute_virial) {
    TME_PHASE("virial_solve");
    // Reciprocal virial via Parseval: 0.5 sum(Q (.) IFFT[G_vir FFT(Q)]).
    std::vector<std::complex<double>> spectrum =
        fft_.forward_real(q_grid.values());
    parallel_for(0, spectrum.size(),
                 [&](std::size_t i) { spectrum[i] *= virial_influence_[i]; });
    const std::vector<double> phi_vir = fft_.inverse_to_real(std::move(spectrum));
    double w = 0.0;
    const std::vector<double>& q_values = q_grid.values();
    for (std::size_t i = 0; i < phi_vir.size(); ++i) w += q_values[i] * phi_vir[i];
    out.virial = 0.5 * w;
  }

  if (params_.subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self =
        -constants::kCoulomb * params_.alpha / std::sqrt(M_PI) * q2;
  }
  double q_total = 0.0;
  for (const double q : charges) q_total += q;
  out.energy_background =
      net_charge_background_energy(q_total, params_.alpha, box_.volume());
  if (params_.compute_virial) out.virial += 3.0 * out.energy_background;
  out.energy = out.energy_reciprocal + out.energy_self + out.energy_background;
  return out;
}

}  // namespace tme
