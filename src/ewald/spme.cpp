#include "ewald/spme.hpp"

#include <cmath>
#include <stdexcept>

#include "ewald/greens_function.hpp"
#include "obs/metrics.hpp"
#include "util/constants.hpp"
#include "util/parallel.hpp"

namespace tme {

Spme::Spme(const Box& box, const SpmeParams& params)
    : box_(box),
      params_(params),
      assigner_(box, params.grid, params.order),
      fft_(params.grid.nx, params.grid.ny, params.grid.nz),
      influence_(spme_influence(box, params.grid, params.order, params.alpha)) {
  if (params.order % 2 != 0) {
    throw std::invalid_argument("Spme: B-spline order must be even");
  }
}

Grid3d Spme::solve_potential(const Grid3d& charge_grid) const {
  if (!(charge_grid.dims() == params_.grid)) {
    throw std::invalid_argument("Spme::solve_potential: grid mismatch");
  }
  TME_PHASE("spme_solve");
  TME_GAUGE_SET("spme/grid_points", params_.grid.total());
  std::vector<std::complex<double>> spectrum;
  {
    TME_PHASE("fft_forward");
    spectrum = fft_.forward_real(charge_grid.values());
  }
  {
    TME_PHASE("influence_apply");
    // Element-wise, so threading cannot change the result bits.
    parallel_for(0, spectrum.size(),
                 [&](std::size_t i) { spectrum[i] *= influence_[i]; });
  }
  Grid3d potential(params_.grid);
  {
    TME_PHASE("fft_inverse");
    potential.values() = fft_.inverse_to_real(std::move(spectrum));
  }
  return potential;
}

CoulombResult Spme::compute(std::span<const Vec3> positions,
                            std::span<const double> charges) const {
  TME_PHASE("spme");
  TME_COUNTER_ADD("spme/compute_calls", 1);
  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});

  Grid3d q_grid;
  {
    TME_PHASE("charge_assignment");
    q_grid = assigner_.assign(positions, charges);
  }
  const Grid3d potential = solve_potential(q_grid);
  double q_phi = 0.0;
  {
    TME_PHASE("back_interpolation");
    q_phi =
        assigner_.back_interpolate(potential, positions, charges, &out.forces);
  }
  out.energy_reciprocal = 0.5 * q_phi;

  if (params_.subtract_self) {
    double q2 = 0.0;
    for (const double q : charges) q2 += q * q;
    out.energy_self =
        -constants::kCoulomb * params_.alpha / std::sqrt(M_PI) * q2;
  }
  out.energy = out.energy_reciprocal + out.energy_self;
  return out;
}

}  // namespace tme
