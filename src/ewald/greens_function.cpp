#include "ewald/greens_function.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "spline/bspline.hpp"
#include "util/constants.hpp"

namespace tme {

std::vector<double> euler_factors(int p, std::size_t n_grid) {
  if (p < 2) throw std::invalid_argument("euler_factors: p must be >= 2");
  std::vector<double> b2(n_grid, 0.0);
  for (std::size_t n = 0; n < n_grid; ++n) {
    std::complex<double> denom{0.0, 0.0};
    for (int k = 0; k <= p - 2; ++k) {
      const double ang = 2.0 * M_PI * static_cast<double>(n) *
                         static_cast<double>(k) / static_cast<double>(n_grid);
      denom += bspline(p, static_cast<double>(k + 1)) *
               std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    const double mag2 = std::norm(denom);
    if (mag2 < 1e-30) {
      // Odd interpolation orders are singular at the Nyquist mode; even
      // orders (the only ones the TME uses) never reach this.
      throw std::domain_error("euler_factors: singular Euler factor (odd p?)");
    }
    b2[n] = 1.0 / mag2;
  }
  return b2;
}

std::vector<double> spme_influence(const Box& box, GridDims dims, int p,
                                   double alpha) {
  if (alpha <= 0.0) throw std::invalid_argument("spme_influence: alpha must be > 0");
  const std::vector<double> bx = euler_factors(p, dims.nx);
  const std::vector<double> by = euler_factors(p, dims.ny);
  const std::vector<double> bz = euler_factors(p, dims.nz);

  const double volume = box.volume();
  const double prefactor = constants::kCoulomb *
                           static_cast<double>(dims.total()) / (M_PI * volume);
  const double pi2_over_a2 = M_PI * M_PI / (alpha * alpha);

  std::vector<double> g(dims.total(), 0.0);
  for (std::size_t nz = 0; nz < dims.nz; ++nz) {
    const long sz = nz <= dims.nz / 2 ? static_cast<long>(nz)
                                      : static_cast<long>(nz) - static_cast<long>(dims.nz);
    const double mz = static_cast<double>(sz) / box.lengths.z;
    for (std::size_t ny = 0; ny < dims.ny; ++ny) {
      const long sy = ny <= dims.ny / 2 ? static_cast<long>(ny)
                                        : static_cast<long>(ny) - static_cast<long>(dims.ny);
      const double my = static_cast<double>(sy) / box.lengths.y;
      for (std::size_t nx = 0; nx < dims.nx; ++nx) {
        const long sx = nx <= dims.nx / 2 ? static_cast<long>(nx)
                                          : static_cast<long>(nx) - static_cast<long>(dims.nx);
        const double mx = static_cast<double>(sx) / box.lengths.x;
        const std::size_t idx = (nz * dims.ny + ny) * dims.nx + nx;
        const double m2 = mx * mx + my * my + mz * mz;
        if (m2 == 0.0) {
          g[idx] = 0.0;  // tinfoil boundary: drop the k = 0 mode
          continue;
        }
        g[idx] = prefactor * std::exp(-pi2_over_a2 * m2) / m2 * bx[nx] * by[ny] * bz[nz];
      }
    }
  }
  return g;
}

std::vector<double> spme_virial_influence(const Box& box, GridDims dims, int p,
                                          double alpha) {
  std::vector<double> g = spme_influence(box, dims, p, alpha);
  // k^2 / (2 alpha^2) = 2 pi^2 m^2 / alpha^2.
  const double two_pi2_over_a2 = 2.0 * M_PI * M_PI / (alpha * alpha);
  for (std::size_t nz = 0; nz < dims.nz; ++nz) {
    const long sz = nz <= dims.nz / 2 ? static_cast<long>(nz)
                                      : static_cast<long>(nz) - static_cast<long>(dims.nz);
    const double mz = static_cast<double>(sz) / box.lengths.z;
    for (std::size_t ny = 0; ny < dims.ny; ++ny) {
      const long sy = ny <= dims.ny / 2 ? static_cast<long>(ny)
                                        : static_cast<long>(ny) - static_cast<long>(dims.ny);
      const double my = static_cast<double>(sy) / box.lengths.y;
      for (std::size_t nx = 0; nx < dims.nx; ++nx) {
        const long sx = nx <= dims.nx / 2 ? static_cast<long>(nx)
                                          : static_cast<long>(nx) - static_cast<long>(dims.nx);
        const double mx = static_cast<double>(sx) / box.lengths.x;
        const double m2 = mx * mx + my * my + mz * mz;
        g[(nz * dims.ny + ny) * dims.nx + nx] *= 1.0 - two_pi2_over_a2 * m2;
      }
    }
  }
  return g;
}

}  // namespace tme
