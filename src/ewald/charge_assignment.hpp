// B-spline charge assignment (anterpolation) and back interpolation —
// the numerics of the MDGRAPE-4A long-range unit (LRU), paper Sec. IV.A.
//
// CA mode (Eq. 12):  Q_m = sum_i q_i M_p(u_i - m)       (periodic)
// BI mode (Eq. 13–17): per-atom potential phi_i and force
//   F_i = -(q_i / h) sum_m Phi_m grad M_p(u_i - m)
//
// The same operator pair is used by SPME, B-spline MSM, and the TME; the
// hardware fixes p = 6 but the software supports any even p >= 2.
#pragma once

#include <span>
#include <vector>

#include "grid/grid3d.hpp"
#include "util/simd.hpp"
#include "util/vec3.hpp"

namespace tme {

class ThreadPool;

class ChargeAssigner {
 public:
  // `dims` is the target grid; grid spacing is box.lengths / dims per axis.
  ChargeAssigner(const Box& box, GridDims dims, int order);

  int order() const { return p_; }
  const GridDims& dims() const { return dims_; }
  Vec3 spacing() const { return h_; }

  // Which instantiation of the stencil kernels this assigner runs (resolved
  // from TME_SIMD at construction; settable for A/B parity tests).  Spreading
  // is bitwise invariant under the mode (element-wise fma on the grid); the
  // back-interpolation gather reduces lane partials with a fixed tree, so
  // native differs from scalar by reassociation rounding only — the one
  // documented relaxation of the SIMD parity contract (util/simd.hpp).
  simd::Mode simd_mode() const { return simd_mode_; }
  void set_simd_mode(simd::Mode mode) { simd_mode_ = mode; }

  // Anterpolation: scatter all charges onto a fresh grid.  Particle batches
  // spread into per-thread scratch grids on `pool` (nullptr = the
  // process-wide pool) and are reduced point-wise in fixed batch order; a
  // one-thread pool reproduces the serial scatter exactly.
  Grid3d assign(std::span<const Vec3> positions, std::span<const double> charges,
                ThreadPool* pool = nullptr) const;

  // Back interpolation: per-atom potential phi_i = sum_m Phi_m M_p(u_i - m)
  // and (if forces != nullptr) the accumulated force
  //   forces[i] += -charges[i] * grad phi(r_i).
  // Returns sum_i q_i phi_i (twice the interaction energy).
  double back_interpolate(const Grid3d& potential, std::span<const Vec3> positions,
                          std::span<const double> charges,
                          std::vector<Vec3>* forces,
                          std::vector<double>* phi_out = nullptr) const;

 private:
  // Serial scatter of particles [first, last) into `grid` (accumulating).
  void spread_range(Grid3d& grid, std::span<const Vec3> positions,
                    std::span<const double> charges, std::size_t first,
                    std::size_t last) const;

  Box box_;
  GridDims dims_;
  int p_;
  Vec3 h_;
  simd::Mode simd_mode_ = simd::mode_from_env();
};

}  // namespace tme
