// Pluggable long-range Coulomb solver backends.
//
// Every mesh/reciprocal-space method in the library (classical Ewald, SPME,
// TME, fixed-point TME) evaluates the same contract — the erf-part energy,
// forces, and (where supported) virial of a periodic point-charge system —
// behind one interface, so the force field, the solver x scenario
// cross-validation tier (tests/test_solver_matrix.cpp), and the benches can
// swap backends freely.  Each backend also exports a describe() manifest of
// every accuracy knob it honours, which flows into the per-run manifest and
// BENCH_*.json exports so artifacts record exactly which solver
// configuration produced them.
//
// Backend construction: make_ewald_solver / make_spme_solver here;
// make_tme_solver / make_tme_fixed_solver and the name-driven registry in
// core/solvers.hpp (the TME lives above the ewald layer).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "ewald/reference_ewald.hpp"
#include "ewald/spme.hpp"
#include "obs/json.hpp"

namespace tme {

class LongRangeSolver {
 public:
  virtual ~LongRangeSolver() = default;

  // Long-range (erf-part) energy, forces, and — when computes_virial() —
  // the trace of the long-range virial tensor.  Includes the self term and
  // the net-charge neutralising-background correction.
  virtual CoulombResult compute(std::span<const Vec3> positions,
                                std::span<const double> charges) const = 0;

  virtual std::string name() const = 0;
  virtual double alpha() const = 0;
  // The periodic cell the solver was built for (mesh geometry is fixed at
  // construction).
  virtual const Box& box() const = 0;
  // Whether compute() fills CoulombResult::virial analytically.  Backends
  // without one can still be differenced via finite_difference_virial.
  virtual bool computes_virial() const { return false; }

  // Config manifest: backend name plus every accuracy knob, as a JSON
  // object.  Round-trips through obs::manifest_json / BENCH exports.
  virtual obs::JsonValue describe() const = 0;
};

// Builds a solver for a given box — how the cross-validation tier and the
// finite-difference virial rebuild a backend at a scaled geometry.
using LongRangeFactory =
    std::function<std::unique_ptr<LongRangeSolver>(const Box&)>;

// Central-difference virial trace at fixed splitting parameter and fixed
// integer knobs (grid sizes, cutoff counts): rebuilds the solver at
// uniformly (1 +- delta)-scaled boxes with scaled coordinates and returns
// -dE/dln(lambda) — the reference any backend's analytic virial must match.
double finite_difference_virial(const LongRangeFactory& make, const Box& box,
                                std::span<const Vec3> positions,
                                std::span<const double> charges,
                                double delta = 1e-4);

// Completes a long-range result into the total Coulomb interaction by adding
// the real-space erfc pair sum (direct O(N^2) minimum-image loop over all
// pairs, no exclusions) — the Table 1 protocol for comparing a mesh solver
// against the converged ewald_reference.
void add_short_range_direct(const Box& box, std::span<const Vec3> positions,
                            std::span<const double> charges, double alpha,
                            double r_cut, CoulombResult& inout);

// Classical Ewald long-range part (reciprocal + self + background) — the
// accuracy-reference backend.  n_cut = 0 derives the cutoff from the
// Kolafa–Perram factor at 1e-15.
struct EwaldSolverParams {
  double alpha = 3.0;
  int n_cut = 0;
};
std::unique_ptr<LongRangeSolver> make_ewald_solver(const Box& box,
                                                   const EwaldSolverParams& params);

std::unique_ptr<LongRangeSolver> make_spme_solver(const Box& box,
                                                  const SpmeParams& params);

}  // namespace tme
