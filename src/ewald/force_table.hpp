// Tabulated short-range pair kernel — the software analogue of the
// table-lookup function evaluators in MDGRAPE-4A's nonbond force pipelines
// (paper Sec. II): the pipeline never evaluates erfc or sqrt per pair;
// instead it indexes a segmented-polynomial table by r² and evaluates a
// low-order polynomial in the segment-local coordinate.
//
// This class tabulates the two quantities the pair loop needs,
//
//   energy(r²)       = g_S(r; alpha)            = erfc(alpha r)/r
//   force_over_r(r²) = -g_S'(r; alpha)/r        (so F = qq * force_over_r * d)
//
// as cubic Hermite segments uniform in s = r² over [r_min², r_max²].  Fitting
// in r² removes the per-pair sqrt entirely.  Below r_min the table falls back
// to the analytic kernel (the divergence near r = 0 would need unreasonably
// many segments; non-excluded pairs essentially never get that close).  The
// constructor measures the interpolation error against the analytic kernel
// over every segment and exposes the observed bounds, following the
// Deserno–Holm methodology of validating interpolated kernels against the
// analytic ones (see PAPERS.md).
#pragma once

#include <cstddef>
#include <vector>

namespace tme {

class ForceTable {
 public:
  struct Sample {
    double energy = 0.0;        // g_S(r)
    double force_over_r = 0.0;  // -g_S'(r)/r
  };

  // Tabulates over r in [r_min, r_max] with `segments` uniform-in-r² cubic
  // Hermite pieces.  Requires 0 < r_min < r_max, alpha > 0, segments >= 2.
  ForceTable(double alpha, double r_min, double r_max,
             std::size_t segments = 4096);

  // Table lookup with analytic fallback outside [r_min², r_max²).
  // Requires r2 > 0.
  Sample lookup(double r2) const {
    if (r2 < s_min_ || r2 >= s_max_) return analytic(r2);
    const double u = (r2 - s_min_) * inv_ds_;
    std::size_t k = static_cast<std::size_t>(u);
    if (k >= segments_) k = segments_ - 1;  // round-off guard at s_max
    const double t = u - static_cast<double>(k);
    const double* c = coeff_.data() + 8 * k;
    return {((c[3] * t + c[2]) * t + c[1]) * t + c[0],
            ((c[7] * t + c[6]) * t + c[5]) * t + c[4]};
  }

  // The analytic kernel pair (used as fallback and as accuracy reference).
  Sample analytic(double r2) const;

  double alpha() const { return alpha_; }
  double r_min() const { return r_min_; }
  double r_max() const { return r_max_; }
  std::size_t segments() const { return segments_; }

  // Raw table geometry and coefficient storage for the vectorized batch
  // kernel (md/short_range_kernels.cpp), which replicates lookup() across
  // SIMD lanes: segment k's 8 coefficients live at coeff() + 8k.
  double s_min() const { return s_min_; }
  double s_max() const { return s_max_; }
  double inv_ds() const { return inv_ds_; }
  const double* coeff() const { return coeff_.data(); }

  // Maximum relative error observed against the analytic kernel when
  // sampling the interior of every segment at construction time.
  double max_rel_error_energy() const { return err_energy_; }
  double max_rel_error_force() const { return err_force_; }

 private:
  double alpha_ = 0.0;
  double r_min_ = 0.0, r_max_ = 0.0;
  double s_min_ = 0.0, s_max_ = 0.0, inv_ds_ = 0.0;
  std::size_t segments_ = 0;
  // Per segment: 4 cubic coefficients for energy, then 4 for force_over_r,
  // interleaved so one lookup touches a single cache-line-sized block.
  std::vector<double> coeff_;
  double err_energy_ = 0.0;
  double err_force_ = 0.0;
};

}  // namespace tme
