// SPME lattice Green function (influence function) in the convention of
// Deserno & Holm Eq. 28 / Essmann et al.
//
// Applied as  Phi = IFFT[ G (.) FFT(Q) ]  with this library's normalisation
// (inverse carries 1/Ntot), G_n already contains the Coulomb prefactor and
// the B-spline Euler factors |b(n)|^2, so Phi is the long-range potential in
// kJ mol^-1 e^-1 at the grid points:
//   G_n = kCoulomb * (Ntot / (pi V)) * exp(-pi^2 m^2 / alpha^2) / m^2 * B(n),
// with m_j = n~_j / L_j (n~ the signed alias of n) and G_0 = 0 (tinfoil).
#pragma once

#include <vector>

#include "grid/grid3d.hpp"
#include "util/vec3.hpp"

namespace tme {

// |b_j(n)|^2 Euler factors for one axis (size n_grid).  For even p the
// denominator never vanishes, including at the Nyquist frequency.
std::vector<double> euler_factors(int p, std::size_t n_grid);

// Full influence function, size dims.total(), x-fastest layout.
std::vector<double> spme_influence(const Box& box, GridDims dims, int p,
                                   double alpha);

// Virial-weighted influence function: G_n * (1 - k^2 / (2 alpha^2)) with
// k = 2 pi m.  Applied like spme_influence, 0.5 * sum(Q (.) Phi_vir) is the
// trace of the reciprocal-space virial tensor — each mode's energy times its
// lambda-derivative factor under uniform box + coordinate scaling at fixed
// alpha (the fractional coordinates, and hence Q-hat and the Euler factors,
// are scaling-invariant, so the formula is exact for the SPME energy).
std::vector<double> spme_virial_influence(const Box& box, GridDims dims, int p,
                                          double alpha);

}  // namespace tme
