// A-priori RMS force-error estimates for the Ewald splitting, after
// Kolafa & Perram (1992) as popularised by Deserno & Holm ("How to mesh up
// Ewald sums", J. Chem. Phys. 109, 7678 (1998)).  These are the estimates
// production codes use to pick (alpha, r_c, k_c) for a requested accuracy
// instead of trial-and-error; the solver-matrix tier property-tests that
// they upper-bound the measured truncation error of this library's solvers.
//
// Both assume a homogeneous random system (charges uncorrelated with
// positions) in a periodic cell of volume V with N particles and
// Q2 = sum q_i^2; errors are absolute RMS forces in kJ mol^-1 nm^-1,
//   Delta F = sqrt( sum_i |F_i - F_i^exact|^2 / N ).
#pragma once

#include <cstddef>

namespace tme {

// Real-space truncation at r_c:
//   Delta F_dir = 2 kC Q2 exp(-alpha^2 r_c^2) / sqrt(N r_c V).
double ewald_real_space_rms_force_error(double q2_sum, std::size_t n_atoms,
                                        double volume, double r_cut,
                                        double alpha);

// Reciprocal-space truncation at |n| <= n_c (classical Ewald sum, cubic-ish
// cell of edge `box_length`, K = 2 pi n_c / L):
//   Delta F_rec = 2 sqrt(2) kC Q2 alpha exp(-K^2 / 4 alpha^2) / sqrt(N V K),
// from integrating the mean-square force carried by the neglected modes over
// the tail k > K (Kolafa–Perram Gaussian-tail estimate).
double ewald_reciprocal_rms_force_error(double q2_sum, std::size_t n_atoms,
                                        double volume, double box_length,
                                        double alpha, int n_cut);

}  // namespace tme
