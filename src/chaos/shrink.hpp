// Delta-debugging shrinker for lethal chaos schedules.
//
// When a ChaosRunner run fails an oracle, the schedule that produced it may
// compose a dozen events — most of them noise.  shrink_schedule() reduces it
// to a *minimal reproducer*: the classic ddmin loop over the event list
// (drop complements of ever-finer partitions, keep any reduction that still
// reproduces the same failure signature "oracle@step"), followed by a
// step-count trim (a schedule whose last event fires at step k rarely needs
// steps beyond k+1).  Every candidate is re-run from scratch through a fresh
// ChaosRunner — determinism of the runs (one seed drives everything) is what
// makes the search sound.  The result is what `chaos_drill --replay` ships:
// the smallest schedule that still kills the run the same way.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"

namespace tme::chaos {

struct ShrinkOptions {
  int max_runs = 64;     // re-run budget for the whole search
  bool verbose = false;  // narrate candidate verdicts to stdout
};

struct ShrinkResult {
  ChaosSpec spec;            // the minimal reproducer
  ChaosRunResult last_run;   // the reproducer's (failing) run
  std::string signature;     // the preserved "oracle@step" identity
  int runs = 0;              // candidate executions spent
  std::size_t events_before = 0;
  std::size_t events_after = 0;
};

// Shrinks `spec` (which must fail when run under `options`) to a minimal
// schedule preserving the failure signature of its first run.  If the spec
// does not fail at all, returns it unchanged with an empty signature.
ShrinkResult shrink_schedule(const ChaosSpec& spec,
                             const RunnerOptions& options,
                             const ShrinkOptions& shrink = {});

}  // namespace tme::chaos
