#include "chaos/shrink.hpp"

#include <algorithm>
#include <cstdio>

namespace tme::chaos {

namespace {

ChaosSpec with_events(const ChaosSpec& base, std::vector<ChaosEvent> events) {
  ChaosSpec spec = base;
  spec.events = std::move(events);
  return spec;
}

}  // namespace

ShrinkResult shrink_schedule(const ChaosSpec& spec,
                             const RunnerOptions& options,
                             const ShrinkOptions& shrink) {
  ShrinkResult out;
  out.spec = spec;
  out.events_before = spec.events.size();

  const auto attempt = [&](const ChaosSpec& candidate) -> ChaosRunResult {
    ++out.runs;
    ChaosRunner runner(candidate, options);
    return runner.run();
  };

  ChaosRunResult first = attempt(spec);
  if (first.ok) {
    out.last_run = std::move(first);
    out.events_after = spec.events.size();
    return out;  // nothing to shrink: signature stays empty
  }
  out.signature = failure_signature(first);
  out.last_run = first;
  if (shrink.verbose) {
    std::printf("shrink: signature %s, %zu event(s), budget %d runs\n",
                out.signature.c_str(), spec.events.size(), shrink.max_runs);
  }

  // Does this candidate still die the same way?  On a hit, record it as the
  // new best reproducer.
  const auto reproduces = [&](const ChaosSpec& candidate) -> bool {
    if (out.runs >= shrink.max_runs) return false;
    ChaosRunResult r = attempt(candidate);
    const bool same = !r.ok && failure_signature(r) == out.signature;
    if (shrink.verbose) {
      std::printf("shrink: %zu event(s), steps %llu -> %s\n",
                  candidate.events.size(),
                  static_cast<unsigned long long>(candidate.steps),
                  same ? out.signature.c_str()
                       : (r.ok ? "ok" : failure_signature(r).c_str()));
    }
    if (same) out.last_run = std::move(r);
    return same;
  };

  // --- ddmin over the event list -------------------------------------------
  std::vector<ChaosEvent> events = spec.events;
  std::size_t granularity = 2;
  while (events.size() >= 2 && out.runs < shrink.max_runs) {
    const std::size_t n = events.size();
    const std::size_t chunks = std::min(granularity, n);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    bool reduced = false;
    for (std::size_t c = 0; c < chunks && out.runs < shrink.max_runs; ++c) {
      // The complement of chunk c: everything except events [c*chunk, ...).
      std::vector<ChaosEvent> complement;
      for (std::size_t i = 0; i < n; ++i) {
        if (i / chunk != c) complement.push_back(events[i]);
      }
      if (complement.size() == n) continue;
      if (reproduces(with_events(spec, complement))) {
        events = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= events.size()) break;  // 1-minimal: done
      granularity = std::min(events.size(), granularity * 2);
    }
  }

  // --- trim the step count to just past the last surviving event ----------
  ChaosSpec minimal = with_events(spec, events);
  std::uint64_t last_step = 0;
  for (const ChaosEvent& e : events) {
    last_step = std::max(last_step, e.step);
    last_step = std::max(last_step,
                         e.until_step > 0 ? e.until_step : e.step);
  }
  const std::uint64_t trimmed = std::min(spec.steps, last_step + 1);
  if (trimmed < minimal.steps && out.runs < shrink.max_runs) {
    ChaosSpec candidate = minimal;
    candidate.steps = trimmed;
    if (reproduces(candidate)) minimal = std::move(candidate);
  }

  out.spec = std::move(minimal);
  out.events_after = out.spec.events.size();
  if (shrink.verbose) {
    std::printf("shrink: %zu -> %zu event(s) in %d run(s)\n",
                out.events_before, out.events_after, out.runs);
  }
  return out;
}

}  // namespace tme::chaos
