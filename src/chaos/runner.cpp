#include "chaos/runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ewald/splitting.hpp"
#include "hw/fault.hpp"
#include "hw/sdc_guard.hpp"
#include "md/checkpoint.hpp"
#include "md/guardrail.hpp"
#include "md/integrator.hpp"
#include "obs/status.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "par/fleet.hpp"
#include "par/par_tme.hpp"
#include "util/io_shim.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace tme::chaos {

namespace {

// Deterministic drift per step; small enough that the gas never leaves the
// regime the short TME parameters were tuned for.
constexpr double kDriftGamma = 1e-5;

double wrap(double x, double length) {
  x = std::fmod(x, length);
  return x < 0.0 ? x + length : x;
}

void drift(ParticleSystem& system, const std::vector<Vec3>& forces) {
  for (std::size_t i = 0; i < system.size(); ++i) {
    system.forces[i] = forces[i];
    system.positions[i].x =
        wrap(system.positions[i].x + kDriftGamma * forces[i].x,
             system.box.lengths.x);
    system.positions[i].y =
        wrap(system.positions[i].y + kDriftGamma * forces[i].y,
             system.box.lengths.y);
    system.positions[i].z =
        wrap(system.positions[i].z + kDriftGamma * forces[i].z,
             system.box.lengths.z);
  }
}

bool bitwise_equal(const CoulombResult& a, const CoulombResult& b) {
  if (a.energy != b.energy || a.forces.size() != b.forces.size()) return false;
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    if (a.forces[i].x != b.forces[i].x || a.forces[i].y != b.forces[i].y ||
        a.forces[i].z != b.forces[i].z) {
      return false;
    }
  }
  return true;
}

bool bitwise_equal(const ParticleSystem& a, const ParticleSystem& b) {
  if (a.size() != b.size()) return false;
  if (a.box.lengths.x != b.box.lengths.x ||
      a.box.lengths.y != b.box.lengths.y ||
      a.box.lengths.z != b.box.lengths.z) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.positions[i].x != b.positions[i].x ||
        a.positions[i].y != b.positions[i].y ||
        a.positions[i].z != b.positions[i].z ||
        a.velocities[i].x != b.velocities[i].x ||
        a.velocities[i].y != b.velocities[i].y ||
        a.velocities[i].z != b.velocities[i].z ||
        a.forces[i].x != b.forces[i].x || a.forces[i].y != b.forces[i].y ||
        a.forces[i].z != b.forces[i].z || a.masses[i] != b.masses[i] ||
        a.charges[i] != b.charges[i]) {
      return false;
    }
  }
  return true;
}

std::uint64_t io_faults_total(const io::IoStats& s) {
  return s.injected_enospc + s.injected_short_writes + s.injected_eintr +
         s.injected_fsync_failures + s.injected_rename_failures +
         s.injected_open_failures + s.injected_alloc_failures;
}

// Disarms the process-global shim on every exit path of run().
struct ShimDisarm {
  ~ShimDisarm() { io::IoShim::instance().disarm(); }
};

}  // namespace

std::string failure_signature(const ChaosRunResult& result) {
  if (result.ok) return "ok";
  return result.failed_oracle + "@" + std::to_string(result.failed_step);
}

ChaosRunner::ChaosRunner(ChaosSpec spec, RunnerOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

ChaosRunResult ChaosRunner::run() {
  using clock = std::chrono::steady_clock;
  ChaosRunResult result;
  io::IoShim& shim = io::IoShim::instance();
  shim.disarm();
  shim.reset_stats();
  ShimDisarm disarm_on_exit;

  const std::string ckpt_path = options_.workdir + "/chaos.ckpt";
  const std::string ctx_path = options_.workdir + "/chaos.ctx";
  // Stale generations from a previous run (the shrinker re-runs dozens in
  // the same workdir) must not leak into this run's fallback chain.
  std::remove((ckpt_path + ".tmp").c_str());
  std::remove(ckpt_path.c_str());
  for (int g = 1; g < spec_.checkpoint_keep; ++g) {
    std::remove((ckpt_path + "." + std::to_string(g)).c_str());
  }
  std::remove(ctx_path.c_str());

  // Chaos events land on their own coordinator track so the merged timeline
  // shows exactly when each fault fired relative to the fleet's spans.
  obs::TrackId chaos_track = 0;
  if (obs::tracing_active()) {
    chaos_track = obs::Tracer::global().track("chaos", "events");
  }

  const auto note = [&](std::uint64_t step, Surface surface,
                        const std::string& what) {
    result.log.push_back({step, to_string(surface), what});
    if (obs::tracing_active()) {
      obs::Tracer& tracer = obs::Tracer::global();
      tracer.instant(chaos_track, to_string(surface), tracer.now_us(), what);
    }
    if (options_.verbose) {
      std::printf("  [chaos] step %llu %s: %s\n",
                  static_cast<unsigned long long>(step), to_string(surface),
                  what.c_str());
    }
  };
  const auto fail = [&](const char* oracle, std::uint64_t step,
                        const std::string& detail) {
    result.ok = false;
    result.failed_oracle = oracle;
    result.failed_step = step;
    result.failure_detail = detail;
    if (options_.verbose) {
      std::printf("  [chaos] ORACLE FAILED %s@%llu: %s\n", oracle,
                  static_cast<unsigned long long>(step), detail.c_str());
    }
  };

  // --- the physics: a seeded neutral charge gas (worker_drill's system) -----
  Box box;
  box.lengths = {3.2, 3.2, 3.2};
  const std::size_t atoms = spec_.atoms;
  ParticleSystem sys;
  sys.resize(atoms);
  sys.box = box;
  Rng rng(spec_.seed);
  double total_q = 0.0;
  for (std::size_t i = 0; i < atoms; ++i) {
    sys.positions[i] = {rng.uniform(0.0, box.lengths.x),
                        rng.uniform(0.0, box.lengths.y),
                        rng.uniform(0.0, box.lengths.z)};
    sys.charges[i] = rng.uniform(-1.0, 1.0);
    sys.masses[i] = 1.0;
    total_q += sys.charges[i];
  }
  for (double& q : sys.charges) q -= total_q / static_cast<double>(atoms);
  ParticleSystem ref = sys;  // the clean twin's state

  TmeParams tp;
  tp.alpha = alpha_from_tolerance(0.8, 1e-4);
  tp.grid = {16, 16, 16};
  tp.levels = 1;
  tp.grid_cutoff = 4;
  tp.num_gaussians = 3;
  const hw::TorusTopology topo(2, 2, 1);
  const std::size_t node_count = topo.node_count();

  // Clean twin: inline serial executor, no faults armed, ever.
  par::ParallelTme twin(box, tp, topo);

  // Chaos side: the same pipeline through a worker fleet.
  par::ParallelTme distributed(box, tp, topo);
  par::FleetConfig fc;
  fc.backend = spec_.backend == "proc" ? par::FleetConfig::Backend::kProc
                                       : par::FleetConfig::Backend::kInProc;
  fc.workers = spec_.workers;
  fc.timeout_ms = spec_.timeout_ms;
  fc.term_grace_ms = 1000;
  fc.worker_bin = options_.worker_bin;
  fc.context_path = ctx_path;
  // Runner-owned telemetry aggregator: it outlives the kSigterm surface's
  // fleet restarts, so worker chunks from every fleet generation merge into
  // one timeline.
  obs::FleetTelemetry fleet_telemetry;
  auto fleet = std::make_unique<par::WorkerFleet>(distributed.context(),
                                                  distributed.topology(), fc);
  fleet->set_telemetry_sink(&fleet_telemetry);
  distributed.set_executor(fleet.get());

  // Live introspection: the fleet and the runner each contribute a section
  // to SIGUSR1 / periodic status snapshots while this run is live.
  obs::StatusReporter& status = obs::StatusReporter::global();
  const int fleet_section = status.add_provider(
      "fleet", [&fleet](obs::JsonValue& v) { fleet->status_json(v); });
  const int chaos_section =
      status.add_provider("chaos", [&result, &spec = spec_](obs::JsonValue& v) {
        v = obs::JsonValue::make_object();
        auto& o = v.as_object();
        o["steps_total"] =
            obs::JsonValue::make_number(static_cast<double>(spec.steps));
        o["steps_completed"] = obs::JsonValue::make_number(
            static_cast<double>(result.steps_completed));
        o["events_fired"] =
            obs::JsonValue::make_number(static_cast<double>(result.log.size()));
        o["checkpoint_writes"] = obs::JsonValue::make_number(
            static_cast<double>(result.checkpoint_writes));
        o["quiesces"] =
            obs::JsonValue::make_number(static_cast<double>(result.quiesces));
        o["sdc_injected"] = obs::JsonValue::make_number(
            static_cast<double>(result.sdc_injected));
        o["abft_violations"] = obs::JsonValue::make_number(
            static_cast<double>(result.abft_violations));
        o["ok"] = obs::JsonValue::make_bool(result.ok);
        o["failed_oracle"] =
            obs::JsonValue::make_string(result.failed_oracle);
      });
  struct SectionGuard {
    obs::StatusReporter& reporter;
    int id;
    ~SectionGuard() { reporter.remove_provider(id); }
  };
  SectionGuard fleet_section_guard{status, fleet_section};
  SectionGuard chaos_section_guard{status, chaos_section};

  // ABFT baseline: the guarded hardware-functional pipeline with every check
  // disabled and no injector — SDC-burst steps must match it bitwise after
  // recovery (the fleet's library-path forces are a *different* datapath, so
  // they are not the comparison point).
  hw::GuardedTmeConfig clean_cfg;
  clean_cfg.checks_enabled = false;
  const hw::GuardedTmePipeline clean_guarded(box, tp, clean_cfg, nullptr);

  // Degraded-machine state: rebuilt whenever a node/link event lands (the
  // injector's config is fixed at construction).
  std::set<std::size_t> dead_nodes;
  double link_rate = 0.0;
  std::unique_ptr<hw::FaultInjector> machine;
  const auto rebuild_machine = [&]() -> bool {
    hw::FaultConfig mc;
    mc.seed = spec_.seed ^ 0x5eedull;
    mc.link_error_rate = link_rate;
    auto next = std::make_unique<hw::FaultInjector>(mc);
    for (const std::size_t n : dead_nodes) next->kill_node(n);
    try {
      distributed.set_fault_injector(next.get());
    } catch (const std::exception& e) {
      fail("machine-partition", result.steps_completed, e.what());
      return false;
    }
    machine = std::move(next);
    return true;
  };

  GuardrailConfig gc;
  gc.policy = GuardrailPolicy::kWarn;
  gc.energy_drift_tol = 1e12;  // NaN / blow-up detection only: positions
                               // drift, so the energy legitimately walks
  Guardrail guardrail(gc);

  std::vector<Checkpoint> snapshots;  // every write that reported success
  std::uint64_t alloc_refusals_armed = 0;
  bool packet_window_open = false;

  const auto stats_total = [&]() { return io_faults_total(shim.stats()); };

  for (std::uint64_t s = 0; s < spec_.steps; ++s) {
    // ---- schedule: one-shot events firing before this step ----------------
    bool sabotage = false;
    long sabotage_at = 0;
    double sdc_rate = 0.0;
    for (const ChaosEvent& e : spec_.events) {
      if (e.step != s || e.until_step > e.step) continue;
      switch (e.surface) {
        case Surface::kNode: {
          const std::size_t node =
              static_cast<std::size_t>(e.a < 0 ? 0 : e.a) % node_count;
          dead_nodes.insert(node);
          note(s, e.surface, "kill node " + std::to_string(node));
          if (!rebuild_machine()) return result;
          break;
        }
        case Surface::kLink: {
          link_rate = e.rate;
          note(s, e.surface,
               "link error rate -> " + std::to_string(link_rate));
          if (!rebuild_machine()) return result;
          break;
        }
        case Surface::kSdc:
          sdc_rate = e.rate;
          break;
        case Surface::kWorker: {
          const std::size_t rank =
              static_cast<std::size_t>(e.a < 0 ? 0 : e.a) % spec_.workers;
          if (e.detail == "term") {
            fleet->term_worker(rank, e.b > 0 ? e.b : 500);
            note(s, e.surface,
                 "SIGTERM worker " + std::to_string(rank) +
                     (fleet->worker_exited_cleanly(rank) ? " (exited 0)"
                                                         : " (escalated)"));
          } else {
            fleet->kill_worker(rank);
            note(s, e.surface, "SIGKILL worker " + std::to_string(rank));
          }
          break;
        }
        case Surface::kBitrot: {
          std::fstream f(ckpt_path,
                         std::ios::in | std::ios::out | std::ios::binary);
          if (!f) {
            note(s, e.surface, "no checkpoint on disk yet, skipped");
            break;
          }
          f.seekg(0, std::ios::end);
          const auto size = static_cast<long>(f.tellg());
          if (size <= 0) break;
          const long at = (e.a < 0 ? 0 : e.a) % size;
          f.seekg(at);
          char byte = 0;
          f.read(&byte, 1);
          byte = static_cast<char>(byte ^ 0x40);
          f.seekp(at);
          f.write(&byte, 1);
          note(s, e.surface,
               "flipped bit 6 of byte " + std::to_string(at) + " in " +
                   ckpt_path);
          break;
        }
        case Surface::kIo:
          break;  // handled as a window below
        case Surface::kAlloc:
          alloc_refusals_armed += static_cast<std::uint64_t>(e.a < 1 ? 1 : e.a);
          note(s, e.surface,
               "armed " + std::to_string(e.a < 1 ? 1 : e.a) +
                   " allocation refusals");
          break;
        case Surface::kSigterm: {
          // Graceful drain: checkpoint the current state, quiesce the fleet
          // (which re-seals the worker context), tear it down, then restart
          // and prove the resume is bitwise-identical.
          bool drained = true;
          try {
            write_checkpoint_rotating(ckpt_path, sys, s, spec_.checkpoint_keep);
            result.checkpoint_writes++;
            snapshots.push_back({s, sys});
          } catch (const CheckpointError& ce) {
            result.checkpoint_write_failures++;
            drained = false;
            note(s, e.surface,
                 std::string("drain checkpoint refused (") +
                     to_string(ce.fault()) + "), resume check skipped");
          }
          const bool acked = fleet->quiesce();
          result.quiesces++;
          note(s, e.surface,
               acked ? "fleet quiesced, all workers acked"
                     : "fleet quiesced with unacked workers");
          fleet.reset();
          fleet = std::make_unique<par::WorkerFleet>(
              distributed.context(), distributed.topology(), fc);
          fleet->set_telemetry_sink(&fleet_telemetry);
          distributed.set_executor(fleet.get());
          packet_window_open = false;  // fresh transport, default policy
          if (drained) {
            try {
              const Checkpoint resumed =
                  read_latest_checkpoint(ckpt_path, spec_.checkpoint_keep);
              if (resumed.step != s || !bitwise_equal(resumed.system, sys)) {
                fail("sigterm-resume", s,
                     "drain checkpoint did not restore bitwise-identically");
                return result;
              }
              sys = resumed.system;  // resume *from* the checkpoint, literally
              note(s, e.surface, "resumed bitwise-identically from drain");
            } catch (const CheckpointError& ce) {
              fail("sigterm-resume", s,
                   std::string("drain checkpoint unreadable: ") + ce.what());
              return result;
            }
          }
          break;
        }
        case Surface::kSabotage:
          sabotage = true;
          sabotage_at = e.a < 0 ? 0 : e.a;
          break;
        case Surface::kPacket:
          break;  // windows handled below
      }
    }

    // ---- windows: transport packet faults and the IO shim -----------------
    const ChaosEvent* packet = nullptr;
    const ChaosEvent* io_event = nullptr;
    for (const ChaosEvent& e : spec_.events) {
      const std::uint64_t until =
          e.until_step > e.step ? e.until_step : e.step + 1;
      if (s < e.step || s >= until) continue;
      if (e.surface == Surface::kPacket) packet = &e;
      if (e.surface == Surface::kIo) io_event = &e;
    }
    if (packet != nullptr && !packet_window_open) {
      par::TransportFaultPolicy policy;
      policy.seed = spec_.seed ^ (0xAB00ull + packet->step);
      policy.drop_rate = packet->rate;
      policy.corrupt_rate = packet->rate2;
      fleet->set_net_fault(policy);
      packet_window_open = true;
      note(s, Surface::kPacket,
           "window open: drop " + std::to_string(policy.drop_rate) +
               ", corrupt " + std::to_string(policy.corrupt_rate));
    } else if (packet == nullptr && packet_window_open) {
      fleet->set_net_fault(par::TransportFaultPolicy{});
      packet_window_open = false;
      note(s, Surface::kPacket, "window closed");
    }

    const std::uint64_t alloc_left =
        alloc_refusals_armed > shim.stats().injected_alloc_failures
            ? alloc_refusals_armed - shim.stats().injected_alloc_failures
            : 0;
    io::IoFaultPlan plan;
    plan.path_substring = "chaos.ckpt";
    if (io_event != nullptr) {
      if (io_event->detail == "enospc") {
        plan.enospc_after_bytes = io_event->a >= 0 ? io_event->a : 128;
      } else if (io_event->detail == "short") {
        plan.short_writes = true;
      } else if (io_event->detail == "eintr") {
        plan.eintr_every = 2;  // 1 would starve the retry loops forever
      } else if (io_event->detail == "open") {
        plan.fail_open = true;
      } else {
        plan.fail_fsync = true;
      }
      note(s, Surface::kIo, "shim armed: " + io_event->detail);
    }
    plan.fail_allocs = static_cast<long>(alloc_left);
    if (plan.any()) {
      shim.arm(plan);
    } else {
      shim.disarm();
    }

    // ---- the step: clean twin, then the chaos side under the deadline -----
    par::TrafficLog twin_log;
    const CoulombResult want = twin.compute(ref.positions, ref.charges,
                                            &twin_log);
    const auto t0 = clock::now();
    CoulombResult got;
    try {
      par::TrafficLog log;
      got = distributed.compute(sys.positions, sys.charges, &log);
    } catch (const std::exception& e) {
      fail("recovery", s, e.what());
      return result;
    }
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() - t0)
            .count();
    if (elapsed_ms > spec_.step_deadline_ms) {
      fail("recovery-deadline", s,
           "step took " + std::to_string(elapsed_ms) + " ms (deadline " +
               std::to_string(spec_.step_deadline_ms) + " ms)");
      return result;
    }

    if (sabotage) {
      const std::size_t i = static_cast<std::size_t>(sabotage_at) % atoms;
      got.forces[i].x += 1.0;
      note(s, Surface::kSabotage,
           "corrupted force[" + std::to_string(i) + "].x past every defense");
    }

    // Oracle: force parity with the clean twin, bitwise.
    if (!bitwise_equal(got, want)) {
      fail("force-parity", s,
           "fleet forces diverged from the clean twin");
      return result;
    }

    // Oracle: SDC burst through the guarded pipeline recovers bitwise.
    if (sdc_rate > 0.0) {
      hw::FaultConfig sc;
      sc.seed = spec_.seed ^ (0x5dc0ull + s);
      sc.sdc_rate = sdc_rate;
      hw::FaultInjector sdc_inj(sc);
      hw::GuardedTmeConfig gcfg;  // checks enabled
      const hw::GuardedTmePipeline guarded(box, tp, gcfg, &sdc_inj);
      hw::GuardedTmeReport report;
      const CoulombResult shielded =
          guarded.compute(sys.positions, sys.charges, &report);
      const CoulombResult baseline =
          clean_guarded.compute(sys.positions, sys.charges, nullptr);
      result.sdc_injected += sdc_inj.injected_sdc();
      result.abft_violations += report.violations;
      note(s, Surface::kSdc,
           "burst at rate " + std::to_string(sdc_rate) + ": " +
               std::to_string(sdc_inj.injected_sdc()) + " flips, " +
               std::to_string(report.violations) + " caught, " +
               std::to_string(report.stage_recomputes) + " recomputes");
      if (!report.recovered || !bitwise_equal(shielded, baseline)) {
        fail("abft-recovery", s,
             report.recovered
                 ? "guarded forces differ from the checks-off baseline"
                 : "a stage stayed bad after its recompute budget");
        return result;
      }
    }

    // Oracle: guardrail cleanliness (NaN / blow-up escaping into the run).
    sys.forces = got.forces;
    StepReport rep;
    rep.energies.coulomb_long = got.energy;
    rep.kinetic = 0.0;
    const auto violations = guardrail.check(sys, rep, s);
    if (!violations.empty()) {
      fail("guardrail", s, violations.front().what);
      return result;
    }

    // Advance both runs on their own forces; divergence shows up as a
    // force-parity failure next step.
    drift(sys, got.forces);
    ParticleSystem ref_next = ref;
    drift(ref_next, want.forces);
    ref = std::move(ref_next);

    // Rotating durable checkpoint; typed IO refusals are survival, not death.
    if (spec_.checkpoint_interval > 0 &&
        (s + 1) % spec_.checkpoint_interval == 0) {
      try {
        write_checkpoint_rotating(ckpt_path, sys, s + 1, spec_.checkpoint_keep);
        result.checkpoint_writes++;
        snapshots.push_back({s + 1, sys});
      } catch (const CheckpointError& ce) {
        result.checkpoint_write_failures++;
        note(s, Surface::kIo,
             std::string("checkpoint write refused, typed ") +
                 to_string(ce.fault()) + " (older generations intact)");
      }
    }
    result.steps_completed = s + 1;
    // Status snapshots are written from here (never from signal context);
    // the registry gauges are refreshed only when a write is actually due.
    if (obs::StatusReporter::signal_pending() ||
        (status.every() != 0 && (s + 1) % status.every() == 0)) {
      fleet->publish_metrics();
    }
    status.poll(s + 1);
  }

  // ---- end of run: the checkpoint-resume oracle ---------------------------
  shim.disarm();
  if (alloc_refusals_armed > shim.stats().injected_alloc_failures) {
    io::IoFaultPlan plan;  // leftover alloc refusals hit the restore below
    plan.fail_allocs = static_cast<long>(alloc_refusals_armed -
                                         shim.stats().injected_alloc_failures);
    shim.arm(plan);
  }
  if (!snapshots.empty()) {
    std::string used;
    try {
      const Checkpoint last =
          read_latest_checkpoint(ckpt_path, spec_.checkpoint_keep, &used);
      if (used != ckpt_path) {
        // path.N: N newer generations were skipped as damaged/refused.
        const std::string suffix = used.substr(ckpt_path.size() + 1);
        result.checkpoint_fallbacks =
            static_cast<std::uint64_t>(std::stoul(suffix));
        note(spec_.steps, Surface::kBitrot,
             "restore fell back " + std::to_string(result.checkpoint_fallbacks) +
                 " generation(s) to " + used);
      }
      const Checkpoint* match = nullptr;
      for (const Checkpoint& snap : snapshots) {
        if (snap.step == last.step) match = &snap;
      }
      if (match == nullptr) {
        fail("checkpoint-resume", spec_.steps,
             "restored step " + std::to_string(last.step) +
                 " was never successfully written");
      } else if (!bitwise_equal(match->system, last.system)) {
        fail("checkpoint-resume", spec_.steps,
             "restored state differs bitwise from the in-memory snapshot");
      }
    } catch (const CheckpointError& ce) {
      fail("checkpoint-resume", spec_.steps,
           std::string("no generation restorable: ") + ce.what());
    }
    if (!result.ok) return result;
  }
  shim.disarm();

  // ---- harvest ------------------------------------------------------------
  const par::FleetStats& fs = fleet->stats();
  const par::TransportStats& ts = fleet->transport_stats();
  result.worker_deaths += fs.worker_deaths;
  result.respawns += fs.respawns;
  result.retransmissions += fs.retransmissions;
  result.frames_dropped += ts.frames_dropped;
  result.frames_corrupted += ts.frames_corrupted;
  result.io_faults_injected = stats_total();
  fleet->quiesce();  // final worker chunks arrive in the shutdown drain
  result.quiesces++;
  fleet->publish_metrics();
  if (!options_.trace_out.empty()) {
    if (fleet->write_fleet_trace(options_.trace_out)) {
      if (options_.verbose) {
        std::printf("  [chaos] merged fleet trace -> %s\n",
                    options_.trace_out.c_str());
      }
    } else {
      std::fprintf(stderr, "[chaos] failed to write fleet trace %s\n",
                   options_.trace_out.c_str());
    }
  }
  std::remove(ctx_path.c_str());
  return result;
}

// --- replay file -------------------------------------------------------------

void write_replay_file(const std::string& path, const ChaosSpec& spec,
                       const ChaosRunResult& result) {
  obs::JsonValue root = obs::JsonValue::make_object();
  auto& obj = root.as_object();
  obj["spec"] = spec_to_json(spec);
  obs::JsonValue res = obs::JsonValue::make_object();
  auto& ro = res.as_object();
  ro["ok"] = obs::JsonValue::make_number(result.ok ? 1 : 0);
  ro["signature"] = obs::JsonValue::make_string(failure_signature(result));
  ro["failed_oracle"] = obs::JsonValue::make_string(result.failed_oracle);
  ro["failed_step"] =
      obs::JsonValue::make_number(static_cast<double>(result.failed_step));
  ro["failure_detail"] = obs::JsonValue::make_string(result.failure_detail);
  ro["steps_completed"] =
      obs::JsonValue::make_number(static_cast<double>(result.steps_completed));
  obs::JsonValue log = obs::JsonValue::make_array();
  for (const RealizedEvent& e : result.log) {
    obs::JsonValue ev = obs::JsonValue::make_object();
    auto& eo = ev.as_object();
    eo["step"] = obs::JsonValue::make_number(static_cast<double>(e.step));
    eo["surface"] = obs::JsonValue::make_string(e.surface);
    eo["what"] = obs::JsonValue::make_string(e.what);
    log.as_array().push_back(std::move(ev));
  }
  ro["events"] = std::move(log);
  obs::JsonValue stats = obs::JsonValue::make_object();
  auto& so = stats.as_object();
  const auto put = [&](const char* key, std::uint64_t v) {
    so[key] = obs::JsonValue::make_number(static_cast<double>(v));
  };
  put("checkpoint_writes", result.checkpoint_writes);
  put("checkpoint_write_failures", result.checkpoint_write_failures);
  put("checkpoint_fallbacks", result.checkpoint_fallbacks);
  put("worker_deaths", result.worker_deaths);
  put("respawns", result.respawns);
  put("retransmissions", result.retransmissions);
  put("frames_dropped", result.frames_dropped);
  put("frames_corrupted", result.frames_corrupted);
  put("sdc_injected", result.sdc_injected);
  put("abft_violations", result.abft_violations);
  put("io_faults_injected", result.io_faults_injected);
  put("quiesces", result.quiesces);
  ro["stats"] = std::move(stats);
  obj["result"] = std::move(res);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("chaos: cannot write replay file " + path);
  }
  out << root.dump() << "\n";
}

ChaosSpec read_replay_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("chaos: cannot read replay file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  const obs::JsonValue root = obs::json_parse(text.str());
  // Accept both a full replay file and a bare spec.
  if (root.contains("spec")) return spec_from_json(root.at("spec"));
  return spec_from_json(root);
}

}  // namespace tme::chaos
