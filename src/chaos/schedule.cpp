#include "chaos/schedule.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace tme::chaos {

namespace {

constexpr const char* kSurfaceNames[] = {
    "node", "link", "sdc", "packet", "worker",
    "bitrot", "io", "alloc", "sigterm", "sabotage",
};
constexpr std::size_t kSurfaceCount =
    sizeof(kSurfaceNames) / sizeof(kSurfaceNames[0]);

double num_or(const obs::JsonValue& obj, const char* key, double fallback) {
  if (!obj.contains(key)) return fallback;
  return obj.at(key).as_number();
}

std::string str_or(const obs::JsonValue& obj, const char* key,
                   const std::string& fallback) {
  if (!obj.contains(key)) return fallback;
  return obj.at(key).as_string();
}

}  // namespace

const char* to_string(Surface surface) {
  const auto i = static_cast<std::size_t>(surface);
  return i < kSurfaceCount ? kSurfaceNames[i] : "unknown";
}

bool surface_from_string(const std::string& name, Surface* out) {
  for (std::size_t i = 0; i < kSurfaceCount; ++i) {
    if (name == kSurfaceNames[i]) {
      *out = static_cast<Surface>(i);
      return true;
    }
  }
  return false;
}

obs::JsonValue spec_to_json(const ChaosSpec& spec) {
  obs::JsonValue root = obs::JsonValue::make_object();
  auto& obj = root.as_object();
  obj["seed"] = obs::JsonValue::make_number(static_cast<double>(spec.seed));
  obj["steps"] = obs::JsonValue::make_number(static_cast<double>(spec.steps));
  obj["atoms"] = obs::JsonValue::make_number(static_cast<double>(spec.atoms));
  obj["workers"] =
      obs::JsonValue::make_number(static_cast<double>(spec.workers));
  obj["backend"] = obs::JsonValue::make_string(spec.backend);
  obj["checkpoint_interval"] = obs::JsonValue::make_number(
      static_cast<double>(spec.checkpoint_interval));
  obj["checkpoint_keep"] =
      obs::JsonValue::make_number(static_cast<double>(spec.checkpoint_keep));
  obj["timeout_ms"] =
      obs::JsonValue::make_number(static_cast<double>(spec.timeout_ms));
  obj["step_deadline_ms"] =
      obs::JsonValue::make_number(static_cast<double>(spec.step_deadline_ms));
  obs::JsonValue events = obs::JsonValue::make_array();
  for (const ChaosEvent& e : spec.events) {
    obs::JsonValue ev = obs::JsonValue::make_object();
    auto& eo = ev.as_object();
    eo["step"] = obs::JsonValue::make_number(static_cast<double>(e.step));
    eo["surface"] = obs::JsonValue::make_string(to_string(e.surface));
    if (e.rate != 0.0) eo["rate"] = obs::JsonValue::make_number(e.rate);
    if (e.rate2 != 0.0) eo["rate2"] = obs::JsonValue::make_number(e.rate2);
    if (e.a != -1) eo["a"] = obs::JsonValue::make_number(static_cast<double>(e.a));
    if (e.b != -1) eo["b"] = obs::JsonValue::make_number(static_cast<double>(e.b));
    if (e.until_step != 0) {
      eo["until_step"] =
          obs::JsonValue::make_number(static_cast<double>(e.until_step));
    }
    if (!e.detail.empty()) eo["detail"] = obs::JsonValue::make_string(e.detail);
    events.as_array().push_back(std::move(ev));
  }
  obj["events"] = std::move(events);
  return root;
}

ChaosSpec spec_from_json(const obs::JsonValue& json) {
  ChaosSpec spec;
  spec.seed = static_cast<std::uint64_t>(num_or(json, "seed", 2021));
  spec.steps = static_cast<std::uint64_t>(
      num_or(json, "steps", static_cast<double>(spec.steps)));
  spec.atoms = static_cast<std::size_t>(
      num_or(json, "atoms", static_cast<double>(spec.atoms)));
  spec.workers = static_cast<std::size_t>(
      num_or(json, "workers", static_cast<double>(spec.workers)));
  spec.backend = str_or(json, "backend", spec.backend);
  spec.checkpoint_interval = static_cast<std::uint64_t>(num_or(
      json, "checkpoint_interval", static_cast<double>(spec.checkpoint_interval)));
  spec.checkpoint_keep = static_cast<int>(num_or(
      json, "checkpoint_keep", static_cast<double>(spec.checkpoint_keep)));
  spec.timeout_ms = static_cast<long>(
      num_or(json, "timeout_ms", static_cast<double>(spec.timeout_ms)));
  spec.step_deadline_ms = static_cast<long>(num_or(
      json, "step_deadline_ms", static_cast<double>(spec.step_deadline_ms)));
  if (json.contains("events")) {
    for (const obs::JsonValue& ev : json.at("events").as_array()) {
      ChaosEvent e;
      e.step = static_cast<std::uint64_t>(num_or(ev, "step", 0));
      const std::string name = str_or(ev, "surface", "packet");
      if (!surface_from_string(name, &e.surface)) {
        throw std::runtime_error("chaos spec: unknown surface '" + name + "'");
      }
      e.rate = num_or(ev, "rate", 0.0);
      e.rate2 = num_or(ev, "rate2", 0.0);
      e.a = static_cast<long>(num_or(ev, "a", -1));
      e.b = static_cast<long>(num_or(ev, "b", -1));
      e.until_step = static_cast<std::uint64_t>(num_or(ev, "until_step", 0));
      e.detail = str_or(ev, "detail", "");
      spec.events.push_back(std::move(e));
    }
  }
  return spec;
}

std::string dump_spec(const ChaosSpec& spec) { return spec_to_json(spec).dump(); }

ChaosSpec parse_spec(const std::string& text) {
  return spec_from_json(obs::json_parse(text));
}

ChaosSpec spec_from_env(ChaosSpec base) {
  if (const auto path = env::raw("TME_CHAOS_SPEC")) {
    std::ifstream in(*path);
    if (!in) {
      log_warn("chaos", "TME_CHAOS_SPEC='" + *path + "' is not readable");
    } else {
      std::ostringstream text;
      text << in.rdbuf();
      base = parse_spec(text.str());
    }
  }
  base.seed = env::u64_or("TME_CHAOS_SEED", base.seed);
  base.steps = env::u64_or("TME_CHAOS_STEPS", base.steps);
  base.atoms = static_cast<std::size_t>(env::bounded_long_or(
      "TME_CHAOS_ATOMS", static_cast<long>(base.atoms), 8, 1000000));
  base.workers = static_cast<std::size_t>(env::bounded_long_or(
      "TME_CHAOS_WORKERS", static_cast<long>(base.workers), 1, 64));
  const std::size_t backend = env::choice_or("TME_CHAOS_BACKEND",
                                             {"inproc", "proc"},
                                             base.backend == "proc" ? 1 : 0);
  base.backend = backend == 1 ? "proc" : "inproc";
  if (const auto list = env::raw("TME_CHAOS_SURFACES")) {
    std::vector<Surface> surfaces;
    std::stringstream ss(*list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      Surface s;
      if (surface_from_string(item, &s)) {
        surfaces.push_back(s);
      } else {
        log_warn("chaos", "TME_CHAOS_SURFACES: unknown surface '" + item + "'");
      }
    }
    if (!surfaces.empty()) {
      const ChaosSpec random = random_spec(base.seed, base.steps, surfaces);
      base.events = random.events;
    }
  }
  return base;
}

ChaosSpec random_spec(std::uint64_t seed, std::uint64_t steps,
                      const std::vector<Surface>& surfaces) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.steps = steps < 4 ? 4 : steps;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const auto step_at = [&]() -> std::uint64_t {
    return rng.next_u64() % spec.steps;
  };
  for (const Surface s : surfaces) {
    ChaosEvent e;
    e.surface = s;
    e.step = step_at();
    switch (s) {
      case Surface::kNode:
        e.a = static_cast<long>(rng.next_u64() % 4);
        break;
      case Surface::kLink:
        e.rate = 0.02 + 0.03 * rng.uniform();
        break;
      case Surface::kSdc:
        e.rate = 1e-5 + 1e-5 * rng.uniform();
        break;
      case Surface::kPacket: {
        e.rate = 0.05 + 0.05 * rng.uniform();   // drop
        e.rate2 = 0.05 + 0.05 * rng.uniform();  // corrupt
        std::uint64_t until = e.step + 1 + rng.next_u64() % 3;
        if (until > spec.steps) until = spec.steps;
        e.until_step = until;
        break;
      }
      case Surface::kWorker:
        e.a = static_cast<long>(rng.next_u64() % 8);
        e.detail = (rng.next_u64() & 1) ? "kill" : "term";
        e.b = 500;  // term grace ms
        break;
      case Surface::kBitrot:
        e.a = static_cast<long>(rng.next_u64() % 64);
        break;
      case Surface::kIo: {
        static constexpr const char* kIoKinds[] = {"enospc", "short", "eintr",
                                                   "fsync"};
        e.detail = kIoKinds[rng.next_u64() % 4];
        e.a = 128;  // enospc budget bytes, when applicable
        // Hold for two steps so the window straddles a checkpoint write
        // regardless of the rotation phase.
        std::uint64_t until = e.step + 2;
        if (until > spec.steps) until = spec.steps;
        e.until_step = until;
        break;
      }
      case Surface::kAlloc:
        e.a = 1;
        break;
      case Surface::kSigterm:
        // Draining mid-run needs at least one step after it to resume into.
        e.step = e.step % (spec.steps - 1);
        break;
      case Surface::kSabotage:
        e.a = static_cast<long>(rng.next_u64() % 16);
        break;
    }
    spec.events.push_back(std::move(e));
  }
  return spec;
}

}  // namespace tme::chaos
