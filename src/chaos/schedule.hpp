// ChaosSchedule: a seeded, declarative fault timeline for the whole stack.
//
// PRs 3/4/8 each grew a fault surface with its own hand-written drill: dead
// nodes and links (hw/fault + par/recovery), SDC bursts with ABFT recovery
// (hw/sdc_guard), transport packet loss and worker kill/hang/delay
// (par/fleet), checkpoint rotation (md/checkpoint), and now the IO shim's
// resource exhaustion (util/io_shim).  A ChaosSpec composes any number of
// them into one timeline: a list of ChaosEvents, each firing at a step (or
// holding over a [step, until_step) window), driven by one seed so the whole
// adversarial run — which frames drop, which bits flip, which draw kills
// which worker — is exactly reproducible.  Specs round-trip through JSON
// (the replay-file format examples/chaos_drill consumes) and can be
// assembled from TME_CHAOS_* environment knobs for CI one-liners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace tme::chaos {

// Every independently injectable fault surface the repo owns.  kSabotage is
// the deliberately *undetectable* fault — a force corruption injected past
// every defense layer — used to prove the harness's oracles and the shrinker
// actually catch a lethal schedule.
enum class Surface {
  kNode = 0,   // structural: kill torus node `a` (traffic re-homed, physics intact)
  kLink,       // stochastic: per-transfer corruption at `rate` on the sim machine
  kSdc,        // compute bit flips at `rate` through the ABFT-guarded pipeline
  kPacket,     // transport frames dropped (`rate`) / corrupted (`rate2`) in a window
  kWorker,     // process drill on rank `a`: detail "kill" (SIGKILL) or "term"
  kBitrot,     // flip byte `a` of the newest on-disk checkpoint generation
  kIo,         // arm the IO shim on the checkpoint path: detail selects the fault
  kAlloc,      // refuse the next `a` guarded restore allocations
  kSigterm,    // graceful drain: checkpoint, quiesce the fleet, restart, resume
  kSabotage,   // lethal: corrupt one force component after every defense ran
};

const char* to_string(Surface surface);
bool surface_from_string(const std::string& name, Surface* out);

struct ChaosEvent {
  std::uint64_t step = 0;        // fires before this step's force evaluation
  Surface surface = Surface::kPacket;
  double rate = 0.0;             // primary probability / error rate
  double rate2 = 0.0;            // kPacket: corrupt rate alongside drop `rate`
  long a = -1;                   // surface-specific id: node, rank, byte, count
  long b = -1;                   // secondary knob (e.g. term grace ms)
  std::uint64_t until_step = 0;  // >step: window [step, until_step); else one-shot
  // kIo: "enospc" | "short" | "eintr" | "fsync" | "open".
  // kWorker: "kill" | "term".  Free-form note elsewhere.
  std::string detail;
};

struct ChaosSpec {
  std::uint64_t seed = 2021;
  std::uint64_t steps = 8;
  std::size_t atoms = 96;
  std::size_t workers = 2;
  std::string backend = "inproc";        // "inproc" | "proc"
  std::uint64_t checkpoint_interval = 2; // steps between rotating writes
  int checkpoint_keep = 3;               // generations retained
  long timeout_ms = 4000;                // per-worker transport deadline
  long step_deadline_ms = 120000;        // recovery-within-deadline oracle
  std::vector<ChaosEvent> events;
};

// JSON round-trip.  parse_spec throws std::runtime_error on malformed input
// (missing fields fall back to the defaults above, so hand-written repro
// specs stay short).
obs::JsonValue spec_to_json(const ChaosSpec& spec);
ChaosSpec spec_from_json(const obs::JsonValue& json);
std::string dump_spec(const ChaosSpec& spec);
ChaosSpec parse_spec(const std::string& text);

// Builds a spec from the environment on top of `base`:
//   TME_CHAOS_SPEC=<file>       parse this JSON spec file first
//   TME_CHAOS_SEED / TME_CHAOS_STEPS / TME_CHAOS_ATOMS / TME_CHAOS_WORKERS
//   TME_CHAOS_BACKEND=inproc|proc
//   TME_CHAOS_SURFACES=a,b,...  overwrite the event list with a seeded
//                               random schedule over the named surfaces
ChaosSpec spec_from_env(ChaosSpec base = {});

// Seeded random timeline composing the named surfaces over `steps`: each
// surface contributes 1-2 events at deterministically drawn steps with
// rates low enough that every defense layer is exercised but expected to
// hold (kSabotage, if listed, is still lethal by design).
ChaosSpec random_spec(std::uint64_t seed, std::uint64_t steps,
                      const std::vector<Surface>& surfaces);

}  // namespace tme::chaos
