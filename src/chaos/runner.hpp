// ChaosRunner: drives one guarded N-step run under a ChaosSpec and holds it
// to the repo's correctness oracles.
//
// The run is the worker_drill physics scaled down: a seeded neutral charge
// gas in a 3.2^3 box, long-range forces from ParallelTme over a 2x2x1 node
// torus, executed through a WorkerFleet (the spec picks the in-proc or the
// real-process backend).  Positions evolve by a small deterministic
// force-proportional drift each step, the evolving ParticleSystem is
// checkpointed on rotation through the durable md/checkpoint path, and the
// scheduled fault events are applied between steps.
//
// A *clean twin* — the same physics through the inline SerialExecutor with
// no faults armed — runs in lockstep.  The oracles, checked every step:
//
//   force-parity        fleet forces bitwise-equal the twin's (the PR 8
//                       contract, now under composed faults)
//   abft-recovery       on SDC-burst steps the guarded pipeline reports
//                       recovered and matches its own clean baseline bitwise
//   guardrail           no NaN/blow-up escapes into the trajectory
//   recovery-deadline   every step (including its deaths, respawns and
//                       retransmissions) completes inside step_deadline_ms
//   sigterm-resume      a drained fleet restarts from its drain checkpoint
//                       bitwise-identically
//   checkpoint-resume   at end of run the newest readable generation matches
//                       the in-memory snapshot of the same step bitwise
//   machine-partition   scheduled node kills must never partition the torus
//
// IO-shim and bit-rot events on the checkpoint path are *expected* to be
// survived via typed CheckpointErrors and generation fallback — they fail a
// run only if the fallback chain is exhausted.  The realized fault-event log
// (what actually fired, against which file/rank/step) is recorded for the
// replay file; on oracle failure the run stops at the failing step so the
// shrinker sees a deterministic signature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"

namespace tme::chaos {

struct RunnerOptions {
  std::string workdir = ".";  // checkpoint + context files land here
  std::string worker_bin;     // proc backend: fork+exec this binary
  bool verbose = false;       // narrate events and oracle results to stdout
  // Non-empty: after a successful run, write the merged fleet timeline
  // (coordinator tracks + one process per worker incarnation, chaos events
  // as instants) as Chrome/Perfetto JSON.  The runner owns the telemetry
  // aggregator, so chunks survive the mid-run fleet restarts the kSigterm
  // surface performs.
  std::string trace_out;
};

// One entry of the realized fault-event log: what the schedule actually did.
struct RealizedEvent {
  std::uint64_t step = 0;
  std::string surface;
  std::string what;
};

struct ChaosRunResult {
  bool ok = true;
  std::string failed_oracle;  // empty when ok
  std::uint64_t failed_step = 0;
  std::string failure_detail;
  std::vector<RealizedEvent> log;

  std::uint64_t steps_completed = 0;
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_write_failures = 0;  // typed, survived
  std::uint64_t checkpoint_fallbacks = 0;       // generations skipped on read
  std::uint64_t worker_deaths = 0;
  std::uint64_t respawns = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t sdc_injected = 0;
  std::uint64_t abft_violations = 0;
  std::uint64_t io_faults_injected = 0;
  std::uint64_t quiesces = 0;
};

// "oracle@step" — the identity delta-debugging preserves while shrinking.
std::string failure_signature(const ChaosRunResult& result);

class ChaosRunner {
 public:
  ChaosRunner(ChaosSpec spec, RunnerOptions options);

  const ChaosSpec& spec() const { return spec_; }

  // One full run under the schedule.  Never throws for scheduled faults
  // (those become oracle failures or survived events); propagates only
  // genuine harness bugs.
  ChaosRunResult run();

 private:
  ChaosSpec spec_;
  RunnerOptions options_;
};

// Replay file: {"spec": <spec json>, "result": {ok, failed_oracle,
// failed_step, signature, realized event log, stats}} — self-contained, so
// `chaos_drill --replay file.json` re-runs the exact schedule.
void write_replay_file(const std::string& path, const ChaosSpec& spec,
                       const ChaosRunResult& result);
ChaosSpec read_replay_spec(const std::string& path);

}  // namespace tme::chaos
