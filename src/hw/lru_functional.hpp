// Functional (datapath-level) model of the long-range unit (LRU, paper
// Sec. IV.A): B-spline weights evaluated by the recursion pipeline in
// fixed point with a 24-bit fractional part ("maximum of 1 - 2^-24"),
// tensor products and grid accumulation in 32-bit fixed point, per-atom
// potentials in 32-bit and the total potential in 64-bit fixed point.
//
// Validated against the double-precision ChargeAssigner: the quantisation
// error must stay orders of magnitude below the method error, which is the
// design condition the chip's word sizes were chosen for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid3d.hpp"
#include "hw/fault.hpp"
#include "util/vec3.hpp"

namespace tme::hw {

// The binary points are mode-specific ("arbitrary binary point ... shifted
// by a specified amount"): charge words carry little integer range, while
// potential/force words must hold kJ/mol-scale magnitudes.
struct LruFixedFormats {
  int weight_frac_bits = 24;     // spline values/derivatives (24-bit fraction)
  int charge_frac_bits = 24;     // 32-bit grid charge words (CA mode)
  int potential_frac_bits = 14;  // 32-bit grid potential words (BI mode)
  int force_frac_bits = 12;      // 32-bit force accumulator
};

// Spline weights for order p = 6 at normalised coordinate u, quantised the
// way the 12-stage pipeline emits them.  Returns the leftmost grid index.
long lru_spline_weights(double u, std::span<double> values,
                        std::span<double> derivs, const LruFixedFormats& fmt);

// CA mode: scatter charges onto a fresh grid through the fixed-point
// tensor-multiplier path.  A non-null `faults` with sdc_rate > 0 exposes
// every 32-bit grid-word accumulation to a seeded bit-flip draw
// (SdcSite::kLruAccumulator) — the corruption the total-charge ABFT
// invariant exists to catch.
Grid3d lru_charge_assign(const Box& box, GridDims dims,
                         std::span<const Vec3> positions,
                         std::span<const double> charges,
                         const LruFixedFormats& fmt = {},
                         FaultInjector* faults = nullptr);

// BI mode: per-atom potential and force through the fixed-point
// convolution/accumulation path.  Returns sum_i q_i phi_i accumulated at
// 64-bit fixed point.  `faults` exposes each per-atom potential word to the
// same SDC draw as CA mode.
double lru_back_interpolate(const Box& box, const Grid3d& potential,
                            std::span<const Vec3> positions,
                            std::span<const double> charges,
                            std::vector<Vec3>& forces,
                            const LruFixedFormats& fmt = {},
                            FaultInjector* faults = nullptr);

}  // namespace tme::hw
