#include "hw/machine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "hw/fault.hpp"
#include "hw/track_meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tme::hw {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Workload {
  double atoms_per_node = 0.0;
  double bonded_terms_per_node = 0.0;
  double nonbond_interactions_per_node = 0.0;
  std::size_t halo_bytes = 0;      // imported coordinates per node
  std::size_t force_bytes = 0;     // exported halo forces per node
  std::size_t halo_hops = 1;
};

Workload derive_workload(const MachineParams& mp, const StepConfig& cfg,
                         std::size_t alive_nodes) {
  Workload w;
  // Dead nodes shed their atoms/terms onto the survivors: per-node work is
  // divided by the alive count, not the installed count.
  const double nodes = static_cast<double>(alive_nodes);
  w.atoms_per_node = static_cast<double>(cfg.atoms) / nodes;
  w.bonded_terms_per_node = static_cast<double>(cfg.bonded_terms) / nodes;

  const double volume = cfg.box_x * cfg.box_y * cfg.box_z;
  const double density = static_cast<double>(cfg.atoms) / volume;
  const double pairs_per_atom =
      4.0 / 3.0 * kPi * cfg.r_cut * cfg.r_cut * cfg.r_cut * density;
  // One-sided evaluation: each node computes all partners of its own atoms.
  w.nonbond_interactions_per_node = w.atoms_per_node * pairs_per_atom;

  const double dx = cfg.box_x / static_cast<double>(mp.nodes_x);
  const double dy = cfg.box_y / static_cast<double>(mp.nodes_y);
  const double dz = cfg.box_z / static_cast<double>(mp.nodes_z);
  const double import_volume =
      (dx + 2 * cfg.r_cut) * (dy + 2 * cfg.r_cut) * (dz + 2 * cfg.r_cut) -
      dx * dy * dz;
  const double imported_atoms = density * import_volume;
  w.halo_bytes = static_cast<std::size_t>(imported_atoms * 16.0);  // xyz + q
  w.force_bytes = static_cast<std::size_t>(imported_atoms * 12.0); // fx fy fz
  w.halo_hops = static_cast<std::size_t>(
      std::ceil(cfg.r_cut / std::min({dx, dy, dz})));
  return w;
}

GcuLevelGeometry level_geometry(const MachineParams& mp, const StepConfig& cfg,
                                int level) {
  const std::size_t shift = static_cast<std::size_t>(1) << (level - 1);
  GcuLevelGeometry g;
  g.level_x = cfg.grid.nx / shift;
  g.level_y = cfg.grid.ny / shift;
  g.level_z = cfg.grid.nz / shift;
  g.local_x = std::max<std::size_t>(1, g.level_x / mp.nodes_x);
  g.local_y = std::max<std::size_t>(1, g.level_y / mp.nodes_y);
  g.local_z = std::max<std::size_t>(1, g.level_z / mp.nodes_z);
  return g;
}

}  // namespace

double software_fft_estimate(const MachineParams& machine, GridDims grid,
                             const SoftwareFftParams& params) {
  // Per transpose round: every node exchanges its slab with the other
  // P_axis - 1 nodes of its pencil group.  The per-message software cost
  // dominates at fine decompositions (the paper's observation); bandwidth
  // and hop latency are carried for completeness.
  const double p_axis = static_cast<double>(machine.nodes_x);
  const double peers = p_axis - 1.0;
  const double local_words =
      static_cast<double>(grid.total()) / static_cast<double>(machine.node_count());
  const double bytes_per_round = local_words * 8.0;  // complex data, 2 words
  const double avg_hops = p_axis / 4.0 + 0.5;
  const double per_round =
      peers * (params.per_message_software_s +
               machine.nw.hop_latency_s * avg_hops) +
      bytes_per_round / machine.nw.effective_bandwidth();
  // 1D FFT compute is negligible next to the messaging at these sizes.
  return params.transpose_rounds * per_round;
}

MdgrapeMachine::MdgrapeMachine(MachineParams params) : params_(params) {
  if (params_.node_count() == 0) {
    throw std::invalid_argument("MdgrapeMachine: empty node grid");
  }
}

StepTimings MdgrapeMachine::simulate_step(const StepConfig& cfg) const {
  // Trace-only span: a registry timer here would put wall-clock time into
  // the otherwise bit-deterministic bench JSON exports.
  TME_TRACE_SPAN("simulate_step");
  const MachineParams& mp = params_;

  // --- Fault model ----------------------------------------------------------
  const bool faulty = cfg.dead_node_count > 0 || cfg.link_error_rate > 0.0;
  FaultConfig fault_config;
  fault_config.seed = cfg.fault_seed;
  fault_config.link_error_rate = cfg.link_error_rate;
  FaultInjector faults(fault_config);
  if (cfg.dead_node_count > 0) {
    if (cfg.dead_node_count >= mp.node_count()) {
      throw std::invalid_argument("MdgrapeMachine: every node is dead");
    }
    faults.kill_random_nodes(cfg.dead_node_count, mp.node_count());
    const PartitionReport part =
        TorusTopology(mp.nodes_x, mp.nodes_y, mp.nodes_z).partition_report(faults);
    if (!part.unreachable.empty()) {
      throw std::runtime_error(
          "MdgrapeMachine: dead nodes cut the torus into unreachable partitions (" +
          std::to_string(part.unreachable.size()) + " nodes isolated)");
    }
  }
  const std::size_t alive = mp.node_count() - faults.dead_nodes().size();
  const Workload w = derive_workload(mp, cfg, alive);

  // --- Component durations -------------------------------------------------
  const double gp_rate = mp.gp.cycles_per_second();
  const double t_integrate = w.atoms_per_node * mp.gp.integrate_cycles_per_atom / gp_rate;
  const double t_bonded = (w.bonded_terms_per_node * mp.gp.bonded_cycles_per_term +
                           w.atoms_per_node * mp.gp.halo_cycles_per_atom) /
                          gp_rate;
  const double pp_rate =
      mp.pp.clock_hz * mp.pp.pipelines * mp.pp.efficiency;
  const double t_nonbond = w.nonbond_interactions_per_node / pp_rate;
  // Routes that would cross a dead node take a one-hop detour around it.
  const std::size_t halo_hops = w.halo_hops + (faults.dead_nodes().empty() ? 0 : 1);
  const double t_coord_ex = transfer_time(mp.nw, w.halo_bytes, halo_hops);
  const double t_force_ex = transfer_time(mp.nw, w.force_bytes, halo_hops);

  StepTimings out;
  out.lru_ca = lru_pass_time(mp.lru, static_cast<std::size_t>(w.atoms_per_node));
  out.lru_bi = out.lru_ca;

  double t_restriction = 0.0, t_convolution = 0.0, t_prolongation = 0.0;
  for (int l = 1; l <= cfg.levels; ++l) {
    const GcuLevelGeometry geom = level_geometry(mp, cfg, l);
    t_convolution +=
        gcu_convolution_time(mp.gcu, geom, cfg.grid_cutoff, cfg.num_gaussians);
    t_restriction += gcu_transfer_time(mp.gcu, geom, cfg.spline_order);
    t_prolongation += gcu_transfer_time(mp.gcu, geom, cfg.spline_order);
  }
  out.restriction = t_restriction;
  out.convolution = t_convolution;
  out.prolongation = t_prolongation;
  out.gcu_window = t_restriction + t_convolution + t_prolongation;

  const GcuLevelGeometry top = level_geometry(mp, cfg, cfg.levels + 1);
  out.tmenw = tmenw_roundtrip_time(mp.tmenw, top.level_x * top.level_y * top.level_z);

  // Sleeve/grid traffic around the LRU passes (one-hop neighbour exchange of
  // the charge/potential sleeves, Sec. IV.A).
  const GcuLevelGeometry fine = level_geometry(mp, cfg, 1);
  const std::size_t sleeve = static_cast<std::size_t>(cfg.spline_order / 2) + 1;
  const std::size_t sleeve_words =
      (fine.local_x + 2 * sleeve) * (fine.local_y + 2 * sleeve) *
          (fine.local_z + 2 * sleeve) -
      fine.local_points();
  const double t_sleeve = transfer_time(mp.nw, sleeve_words * 4, 1);

  // --- Task DAG (Fig. 9 structure) -----------------------------------------
  constexpr int kNw = 0;  // shared network resource (GCU-exclusive rule)
  EventSimulator sim;
  sim.set_retry_limit(fault_config.max_retries);
  // CRC failures replay an NW task: draw the failed-attempt count from the
  // seeded corruption stream (geometric at the route's error probability).
  auto nw_task = [&](const char* name, double duration, std::vector<TaskId> deps,
                     std::size_t hops) {
    TaskSpec spec{name, "NW", duration, std::move(deps), kNw};
    if (faulty && cfg.link_error_rate > 0.0) {
      while (spec.failures <= fault_config.max_retries &&
             faults.attempt_corrupted(hops)) {
        ++spec.failures;
      }
      spec.retry_penalty =
          fault_config.detect_timeout_s + fault_config.retry_backoff_base_s;
    }
    return sim.add_task(std::move(spec));
  };
  const TaskId integrate1 = sim.add_task({"INTEGRATE", "GP", t_integrate, {}, -1});
  const TaskId coord_ex = nw_task("coord exchange", t_coord_ex, {integrate1}, halo_hops);
  const TaskId nonbond =
      sim.add_task({"nonbond pipelines", "PP", t_nonbond, {coord_ex}, -1});
  const TaskId force_ex = nw_task("force exchange", t_force_ex, {nonbond}, halo_hops);

  TaskId final_force_dep = force_ex;
  TaskId bonded_tail;
  if (cfg.long_range) {
    // Bonded work is interleaved with NW transfers, so the exclusive GCU
    // windows suspend it: split it around the two windows of Fig. 10.
    const double chunk_a = 0.25 * t_bonded;
    const double chunk_b = std::min(out.tmenw, 0.5 * t_bonded);
    const double chunk_c = std::max(t_bonded - chunk_a - chunk_b, 0.0);

    const TaskId bonded_a = sim.add_task({"bonded (GP)", "GP", chunk_a, {coord_ex}, -1});
    const TaskId ca = sim.add_task({"LRU charge assign", "LRU", out.lru_ca, {integrate1}, -1});
    const TaskId ca_sleeve = nw_task("CA sleeve exchange", t_sleeve, {ca}, 1);
    const TaskId restriction = sim.add_task(
        {"GCU restriction", "GCU", t_restriction, {ca_sleeve, bonded_a}, kNw});
    const TaskId tmenw =
        sim.add_task({"TMENW top level", "TMENW", out.tmenw, {restriction}, -1});
    const TaskId bonded_b =
        sim.add_task({"bonded (GP)", "GP", chunk_b, {restriction}, -1});
    const TaskId conv = sim.add_task(
        {"GCU convolution", "GCU", t_convolution, {restriction, bonded_b}, kNw});
    const TaskId prolong = sim.add_task(
        {"GCU prolongation", "GCU", t_prolongation, {conv, tmenw}, kNw});
    const TaskId grid_out = nw_task("grid to LRU", t_sleeve, {prolong}, 1);
    const TaskId bi =
        sim.add_task({"LRU back interp", "LRU", out.lru_bi, {grid_out}, -1});
    bonded_tail = sim.add_task({"bonded (GP)", "GP", chunk_c, {prolong}, -1});
    final_force_dep = bi;
  } else {
    bonded_tail = sim.add_task({"bonded (GP)", "GP", t_bonded, {coord_ex}, -1});
  }
  sim.add_task({"INTEGRATE", "GP", t_integrate,
                {bonded_tail, final_force_dep, force_ex}, -1});

  out.schedule = sim.run();
  out.step_time = sim.makespan();
  out.dead_nodes = faults.dead_nodes().size();
  out.dead_node_list.assign(faults.dead_nodes().begin(),
                            faults.dead_nodes().end());
  out.task_retries = sim.total_retries();
  out.tasks_given_up = sim.failed_tasks();

  // --- Per-link telemetry ----------------------------------------------------
  // The modelled NW activities are symmetric neighbour exchanges, so each
  // alive node's halo/force (and, with long range, the two sleeve passes)
  // traffic is split evenly across its outgoing links to alive neighbours.
  // CRC replays are attributed round-robin over the alive nodes' +x links —
  // an attribution model, not a measurement (the DAG has no per-node blame).
  {
    const TorusTopology topo(mp.nodes_x, mp.nodes_y, mp.nodes_z);
    out.links = std::make_shared<LinkTelemetry>(topo);
    const std::uint64_t sleeve_bytes =
        cfg.long_range ? static_cast<std::uint64_t>(sleeve_words) * 4 * 2 : 0;
    const std::uint64_t node_bytes =
        static_cast<std::uint64_t>(w.halo_bytes) +
        static_cast<std::uint64_t>(w.force_bytes) + sleeve_bytes;
    std::vector<std::size_t> alive_nodes;
    for (std::size_t n = 0; n < mp.node_count(); ++n) {
      if (!faults.node_dead(n)) alive_nodes.push_back(n);
    }
    for (const std::size_t n : alive_nodes) {
      const NodeCoord c = topo.coord(n);
      const auto nbrs = topo.neighbours(c);
      std::uint64_t live_dirs = 0;
      for (int d = 0; d < LinkTelemetry::kDirections; ++d) {
        if (!faults.node_dead(topo.index(nbrs[static_cast<std::size_t>(d)])))
          ++live_dirs;
      }
      if (live_dirs == 0) continue;
      const std::uint64_t per_dir = node_bytes / live_dirs;
      for (int d = 0; d < LinkTelemetry::kDirections; ++d) {
        if (faults.node_dead(topo.index(nbrs[static_cast<std::size_t>(d)])))
          continue;
        out.links->record_link(n, d, per_dir, 1, 0);
      }
    }
    for (std::size_t r = 0; r < out.task_retries && !alive_nodes.empty(); ++r) {
      out.links->record_link(alive_nodes[r % alive_nodes.size()], 0, 0, 0, 1);
    }
  }

  if (cfg.long_range) {
    double lr_start = std::numeric_limits<double>::infinity();
    double lr_end = 0.0;
    for (const ScheduledTask& t : out.schedule) {
      const bool lr_lane = t.spec.lane == "LRU" || t.spec.lane == "GCU" ||
                           t.spec.lane == "TMENW";
      const bool lr_nw = t.spec.name == "CA sleeve exchange" ||
                         t.spec.name == "grid to LRU";
      if (!lr_lane && !lr_nw) continue;
      out.long_range_total += t.spec.duration;
      lr_start = std::min(lr_start, t.start);
      lr_end = std::max(lr_end, t.end);
    }
    out.long_range_span = lr_end - lr_start;
  }
  return out;
}

void record_step_metrics(const StepTimings& timings, const NetworkParams& nw) {
  obs::Registry& reg = obs::Registry::global();
  // Table 2 stage names <- the schedule's task names.  Summing exactly the
  // tasks that long_range_total sums keeps sum(stages) == total.
  const std::pair<const char*, const char*> stage_of[] = {
      {"LRU charge assign", "charge_assignment"},
      {"CA sleeve exchange", "ca_sleeve_exchange"},
      {"GCU restriction", "restriction"},
      {"GCU convolution", "convolution"},
      {"GCU prolongation", "prolongation"},
      {"TMENW top level", "top_fft"},
      {"grid to LRU", "grid_to_lru"},
      {"LRU back interp", "back_interpolation"},
  };
  for (const ScheduledTask& t : timings.schedule) {
    for (const auto& [task_name, stage] : stage_of) {
      if (t.spec.name == task_name) {
        reg.timer_add(std::string("step/") + stage, t.spec.duration);
        break;
      }
    }
  }
  reg.timer_add("step", timings.long_range_total);
  reg.gauge_set("step/makespan_s", timings.step_time);
  reg.gauge_set("step/long_range_span_s", timings.long_range_span);
  reg.gauge_set("step/gcu_window_s", timings.gcu_window);
  reg.gauge_set("step/dead_nodes", static_cast<double>(timings.dead_nodes));
  reg.gauge_set("step/task_retries", static_cast<double>(timings.task_retries));
  if (timings.links != nullptr) {
    timings.links->record_gauges(nw, timings.step_time);
  }
}

void trace_step(const StepTimings& timings, const MachineParams& machine) {
  if (!obs::tracing_active()) return;
  obs::Tracer& tracer = obs::Tracer::global();
  // Distinct process names per replay keep repeated steps from overlapping
  // on the same rows.
  static std::atomic<int> g_step_serial{0};
  const int serial = ++g_step_serial;
  const std::string step_process = "machine step " + std::to_string(serial);

  // Unit lanes (GP/PP/NW/LRU/GCU/TMENW), labelled via the shared metadata.
  trace_schedule(timings.schedule, step_process);

  // FPGA FFT sub-stages of the TMENW window: the forward transform, the
  // pointwise Green's-function multiply, and the inverse transform are
  // modelled as equal thirds of the round trip.
  for (const ScheduledTask& t : timings.schedule) {
    if (t.spec.name != "TMENW top level" || t.spec.duration <= 0.0) continue;
    const obs::TrackId fft = tracer.track(step_process, "FPGA FFT stages");
    const double start_us = t.start * 1e6;
    const double third_us = (t.end - t.start) * 1e6 / 3.0;
    tracer.complete(fft, "fft forward", start_us, third_us);
    tracer.complete(fft, "greens pointwise", start_us + third_us, third_us);
    tracer.complete(fft, "fft inverse", start_us + 2.0 * third_us, third_us);
  }

  // Per-node tracks: every torus node gets a row; alive nodes replay the
  // replicated halo/nonbond/force activity, dead nodes carry a marker.
  const std::string node_process = "torus nodes " + std::to_string(serial);
  const TorusTopology topo(machine.nodes_x, machine.nodes_y, machine.nodes_z);
  std::vector<bool> dead(topo.node_count(), false);
  for (const std::size_t n : timings.dead_node_list) dead[n] = true;
  const char* kPerNodeTasks[] = {"coord exchange", "nonbond pipelines",
                                 "force exchange"};
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeCoord c = topo.coord(n);
    const obs::TrackId track =
        tracer.track(node_process, "node (" + std::to_string(c.x) + "," +
                                       std::to_string(c.y) + "," +
                                       std::to_string(c.z) + ")");
    if (dead[n]) {
      tracer.instant(track, "dead", 0.0, "structural fault");
      continue;
    }
    for (const ScheduledTask& t : timings.schedule) {
      for (const char* name : kPerNodeTasks) {
        if (t.spec.name == name && t.spec.duration > 0.0) {
          tracer.complete(track, t.spec.name, t.start * 1e6,
                          (t.end - t.start) * 1e6);
        }
      }
    }
  }

  if (timings.links != nullptr) {
    timings.links->emit_trace_counters(machine.nw, timings.step_time,
                                       timings.step_time * 1e6);
  }
}

double MdgrapeMachine::performance_us_per_day(const StepConfig& cfg) const {
  const StepTimings t = simulate_step(cfg);
  const double steps_per_day = 86400.0 / t.step_time;
  return steps_per_day * cfg.timestep_fs * 1e-9;  // fs -> us
}

}  // namespace tme::hw
