// Timing model of the grid convolution unit (GCU, paper Sec. IV.B).
//
// The GCU consumes 4x4x4 grid blocks streamed from the network buffers:
// each incoming block row (4 grid values) updates the local points within
// kernel range, at a sustained rate of 12 grid-point evaluations per cycle
// (peak 16; "the data feed rate from a single network buffer limits the
// calculation").  An axis pass is therefore data-streaming bound:
//
//   rows_in  = lines * span / 4            span = local extent + 2 g_c
//   evals    = rows_in * (2 g_c + 4) * M   (2 g_c + 4 outputs per row)
//   t_axis   = evals / (12 * f) * waiting_factor + software_overhead
//
// waiting_factor folds in inter-node synchronisation and load imbalance
// (paper Sec. V.B: "the apparent duration of the GCU activities includes
// the waiting for data from the other nodes"); the per-phase software
// overhead is the CGP flow-control cost visible in Fig. 10.  With the
// defaults the model lands on the paper's measured 32^3 anchors
// (convolution ~6 us, restriction/prolongation ~1.5 us) and scales with the
// streamed data volume as Sec. VI.A expects.
#pragma once

#include <cstddef>

namespace tme::hw {

struct GcuParams {
  double clock_hz = 0.6e9;
  double points_per_cycle = 12.0;      // sustained grid-point evals per cycle
  double waiting_factor = 2.0;         // sync + imbalance multiplier
  double conv_phase_overhead_s = 0.35e-6;      // CGP cost per convolution axis
  double transfer_phase_overhead_s = 1.0e-6;   // CGP cost per restriction/
                                               // prolongation phase (incl.
                                               // TMENW initiation, Fig. 10)
};

// Per-node geometry of one grid level on the torus.
struct GcuLevelGeometry {
  std::size_t local_x = 4, local_y = 4, local_z = 4;  // local grid extents
  std::size_t level_x = 32, level_y = 32, level_z = 32;  // global extents

  std::size_t local_points() const { return local_x * local_y * local_z; }
};

// Full separable convolution of one level (three axis passes).
double gcu_convolution_time(const GcuParams& params, const GcuLevelGeometry& geom,
                            int grid_cutoff, int num_gaussians);

// Restriction or prolongation at one level (axis-wise two-scale
// convolutions, single synchronised phase).
double gcu_transfer_time(const GcuParams& params, const GcuLevelGeometry& geom,
                         int spline_order);

}  // namespace tme::hw
