#include "hw/sdc_guard.hpp"

#include <cmath>
#include <cstddef>
#include <string>

#include "ewald/greens_function.hpp"
#include "grid/transfer.hpp"
#include "hw/fpga_fft.hpp"
#include "hw/gcu_functional.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/constants.hpp"

namespace tme::hw {

namespace {

constexpr double kEpsDouble = 0x1p-52;
constexpr double kEpsFloat = 0x1p-23;

double sum_abs(const Grid3d& g) {
  double s = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) s += std::abs(g[i]);
  return s;
}

double tap_abs_sum(const Kernel1d& k) {
  double s = 0.0;
  for (const double t : k.taps) s += std::abs(t);
  return s;
}

}  // namespace

const char* to_string(GuardedStage stage) {
  switch (stage) {
    case GuardedStage::kChargeAssign: return "charge_assign";
    case GuardedStage::kRestriction: return "restriction";
    case GuardedStage::kTopSolve: return "top_solve";
    case GuardedStage::kProlongation: return "prolongation";
    case GuardedStage::kConvolution: return "convolution";
    case GuardedStage::kBackInterpolate: return "back_interpolate";
  }
  return "?";
}

GuardedTmePipeline::GuardedTmePipeline(const Box& box, const TmeParams& params,
                                       GuardedTmeConfig config,
                                       FaultInjector* faults)
    : box_(box), config_(config), faults_(faults), tme_(box, params) {
  const GridDims top = tme_.level_dims(params.levels + 1);
  if (params.top_level_mode == TopLevelMode::kSpme && top.nx == 16 &&
      top.ny == 16 && top.nz == 16) {
    // The FPGA engine handles exactly this geometry; other tops fall back to
    // the library SPME solve (zero-mean check only, no Parseval probe).
    top_influence_ = spme_influence(
        box, top, params.order, params.alpha / std::ldexp(1.0, params.levels));
  }
}

bool GuardedTmePipeline::guarded_stage(
    GuardedStage stage, int index, const std::function<void()>& stage_fn,
    const std::function<bool(abft::CheckSet&)>& verify, abft::CheckSet& checks,
    GuardedTmeReport& report) const {
  TME_TRACE_SPAN(to_string(stage));
  if (faults_ != nullptr) {
    faults_->set_sdc_context(static_cast<int>(stage), index);
  }
  stage_fn();
  if (!config_.checks_enabled) return true;
  if (verify(checks)) return true;
  if (on_violation_) on_violation_(stage, index);
  TME_TRACE_INSTANT_D("abft violation", std::string(to_string(stage)) +
                                            " index " + std::to_string(index));
  for (int retry = 0; retry < config_.max_stage_recomputes; ++retry) {
    // The upset is transient: suspend injection and re-execute just this
    // stage — the retry is bitwise identical to a fault-free evaluation.
    SdcSuspend suspend(faults_);
    stage_fn();
    if (verify(checks)) {
      ++report.stage_recomputes;
      TME_COUNTER_ADD("abft/stage_recomputes", 1);
      TME_TRACE_INSTANT_D("abft recompute ok",
                          std::string(to_string(stage)) + " retry " +
                              std::to_string(retry + 1));
      return true;
    }
    if (on_violation_) on_violation_(stage, index);
  }
  report.recovered = false;
  TME_COUNTER_ADD("abft/unrecovered_stages", 1);
  TME_TRACE_INSTANT_D("abft unrecovered", std::string(to_string(stage)) +
                                              " index " + std::to_string(index));
  return false;
}

Grid3d GuardedTmePipeline::axis_pass(const Grid3d& in, const Kernel1d& kernel,
                                     int axis) const {
  const GridDims& d = in.dims();
  const std::size_t along = axis == 0 ? d.nx : (axis == 1 ? d.ny : d.nz);
  const bool gcu_fits = d.nx % 4 == 0 && d.ny % 4 == 0 && d.nz % 4 == 0 &&
                        static_cast<std::size_t>(2 * kernel.cutoff + 4) <= along;
  if (gcu_fits) {
    return gcu_functional_axis_pass(in, kernel, axis, d, nullptr, faults_);
  }
  // Kernel reach wraps the level period: the library path (which the
  // machine's wide-kernel fallback mirrors) — not an SDC injection site.
  Grid3d out(d);
  convolve_axis(in, kernel, static_cast<ConvAxis>(axis), out);
  return out;
}

CoulombResult GuardedTmePipeline::compute(std::span<const Vec3> positions,
                                          std::span<const double> charges,
                                          GuardedTmeReport* report) const {
  TME_PHASE("guarded_tme");
  const TmeParams& params = tme_.params();
  const int levels = params.levels;
  const int p = params.order;

  GuardedTmeReport scratch;
  GuardedTmeReport& rep = report != nullptr ? *report : scratch;
  rep = GuardedTmeReport{};
  abft::CheckSet checks(config_.tolerance_scale);

  CoulombResult out;
  out.forces.assign(positions.size(), Vec3{});

  double q_sum = 0.0, q_abs = 0.0;
  for (const double q : charges) {
    q_sum += q;
    q_abs += std::abs(q);
  }

  // Stage 0: charge assignment through the LRU fixed-point datapath.  The
  // order-p B-spline weights sum to 1 per axis, so the grid total must equal
  // the total charge to within the accumulated quantisation error.
  Grid3d q_grid;
  const std::size_t ca_ops = positions.size() * static_cast<std::size_t>(p * p * p);
  guarded_stage(
      GuardedStage::kChargeAssign, -1,
      [&] {
        q_grid = lru_charge_assign(box_, params.grid, positions, charges,
                                   config_.lru_formats, faults_);
      },
      [&](abft::CheckSet& c) {
        return c.check("charge_total", q_sum, abft::grid_total(q_grid),
                       abft::fixed_tolerance(ca_ops,
                                             config_.lru_formats.charge_frac_bits));
      },
      checks, rep);

  // Downward pass: each restriction preserves the grid total exactly (the
  // even and odd halves of the two-scale coefficients both sum to 1).
  std::vector<Grid3d> q(static_cast<std::size_t>(levels) + 1);
  q[0] = std::move(q_grid);
  for (int l = 1; l <= levels; ++l) {
    const Grid3d& fine = q[static_cast<std::size_t>(l - 1)];
    Grid3d& coarse = q[static_cast<std::size_t>(l)];
    const double fine_total = abft::grid_total(fine);
    const double tol =
        abft::rounding_tolerance(fine.size(), sum_abs(fine), kEpsDouble);
    guarded_stage(
        GuardedStage::kRestriction, l + 1,
        [&] { coarse = restrict_grid(fine, p); },
        [&](abft::CheckSet& c) {
          return c.check("restrict_total", fine_total, abft::grid_total(coarse),
                         tol, l + 1);
        },
        checks, rep);
  }

  // Stage 2: top-level solve.  The k = 0 influence is zero (tinfoil), so the
  // output grid has zero mean; the FPGA path additionally checks Parseval on
  // both sides of the Green multiply.
  Grid3d phi;
  const Grid3d& q_top = q[static_cast<std::size_t>(levels)];
  if (!top_influence_.empty()) {
    FpgaAbftProbe probe;
    guarded_stage(
        GuardedStage::kTopSolve, -1,
        [&] {
          std::vector<float> cf(q_top.size());
          for (std::size_t i = 0; i < cf.size(); ++i) {
            cf[i] = static_cast<float>(q_top[i]);
          }
          const std::vector<float> pf =
              fpga_top_level_convolve(cf, top_influence_, faults_, &probe);
          phi = Grid3d(q_top.dims());
          for (std::size_t i = 0; i < pf.size(); ++i) {
            phi[i] = static_cast<double>(pf[i]);
          }
        },
        [&](abft::CheckSet& c) {
          const auto n = static_cast<std::size_t>(q_top.size());
          bool ok = c.check(
              "fpga_parseval_forward", probe.input_energy, probe.forward_energy,
              abft::rounding_tolerance(n, probe.input_energy, kEpsFloat), 0);
          ok &= c.check(
              "fpga_parseval_inverse", probe.green_energy, probe.output_energy,
              abft::rounding_tolerance(n, probe.green_energy, kEpsFloat), 1);
          ok &= c.check("top_zero_mean", 0.0, abft::grid_total(phi),
                        abft::rounding_tolerance(n, phi.max_abs(), kEpsFloat));
          return ok;
        },
        checks, rep);
  } else {
    guarded_stage(
        GuardedStage::kTopSolve, -1,
        [&] { phi = tme_.top_level().solve_potential(q_top); },
        [&](abft::CheckSet& c) {
          return c.check("top_zero_mean", 0.0, abft::grid_total(phi),
                         abft::rounding_tolerance(phi.size(), phi.max_abs(),
                                                  kEpsDouble));
        },
        checks, rep);
  }

  // Upward pass: prolongation scales the total by exactly 8 (two-scale
  // coefficients sum to 2 per axis); each GCU axis pass satisfies the
  // Huang–Abraham per-line checksum, which localises a flip to one line of
  // one axis of one term of one level — the unit the recompute re-runs.
  for (int l = levels; l >= 1; --l) {
    Grid3d level_phi;
    const double phi_total = abft::grid_total(phi);
    const double prolong_tol =
        abft::rounding_tolerance(8 * phi.size(), sum_abs(phi), kEpsDouble);
    guarded_stage(
        GuardedStage::kProlongation, l,
        [&] { level_phi = prolong_grid(phi, p); },
        [&](abft::CheckSet& c) {
          return c.check("prolong_total", 8.0 * phi_total,
                         abft::grid_total(level_phi), prolong_tol, l);
        },
        checks, rep);

    const std::vector<SeparableTerm>& terms = tme_.level_kernels(l);
    const double scale = constants::kCoulomb / std::ldexp(1.0, l - 1);
    const Grid3d& src = q[static_cast<std::size_t>(l - 1)];
    for (std::size_t t = 0; t < terms.size(); ++t) {
      Grid3d cur = src;
      for (int axis = 0; axis < 3; ++axis) {
        const Kernel1d& k = axis == 0   ? terms[t].kx
                            : axis == 1 ? terms[t].ky
                                        : terms[t].kz;
        const Grid3d in = std::move(cur);
        const GridDims& d = in.dims();
        const std::size_t along =
            axis == 0 ? d.nx : (axis == 1 ? d.ny : d.nz);
        const double line_tol = abft::rounding_tolerance(
            along * static_cast<std::size_t>(2 * k.cutoff + 1),
            in.max_abs() * tap_abs_sum(k), kEpsDouble);
        const int idx = l * 100 + static_cast<int>(t) * 10 + axis;
        guarded_stage(
            GuardedStage::kConvolution, idx,
            [&] { cur = axis_pass(in, k, axis); },
            [&](abft::CheckSet& c) {
              return abft::check_conv_axis_lines(in, cur, k, axis, line_tol,
                                                 c) == 0;
            },
            checks, rep);
      }
      for (std::size_t i = 0; i < level_phi.size(); ++i) {
        level_phi[i] += scale * cur[i];
      }
    }
    phi = std::move(level_phi);
  }

  // Stage 5: back interpolation through the LRU.  No conservation law ties
  // the per-atom sums to a precomputed checksum, so the invariant here is a
  // sanity envelope: the energy accumulator is finite and bounded by
  // max|phi| * sum|q| (B-spline weights are non-negative and sum to 1); the
  // MD guardrail's force/energy checks are the downstream backstop.
  double q_phi = 0.0;
  guarded_stage(
      GuardedStage::kBackInterpolate, -1,
      [&] {
        out.forces.assign(positions.size(), Vec3{});
        q_phi = lru_back_interpolate(box_, phi, positions, charges, out.forces,
                                     config_.lru_formats, faults_);
      },
      [&](abft::CheckSet& c) {
        const double bound =
            phi.max_abs() * q_abs +
            abft::fixed_tolerance(positions.size(),
                                  config_.lru_formats.potential_frac_bits);
        const double excess = std::max(0.0, std::abs(q_phi) - bound);
        return c.check("bi_energy_bound", 0.0, excess, 0.0);
      },
      checks, rep);

  out.energy_reciprocal = 0.5 * q_phi;
  if (params.subtract_self) {
    double q2 = 0.0;
    for (const double q_i : charges) q2 += q_i * q_i;
    out.energy_self =
        -constants::kCoulomb * params.alpha / std::sqrt(M_PI) * q2;
  }
  out.energy = out.energy_reciprocal + out.energy_self;

  rep.checks_run = checks.checks_run();
  rep.violations = checks.violations().size();
  rep.details = checks.violations();
  return out;
}

}  // namespace tme::hw
