#include "hw/tmenw_model.hpp"

#include <stdexcept>

namespace tme::hw {

double tmenw_roundtrip_time(const TmenwParams& params, std::size_t grid_points) {
  if (params.gather_stages < 1 || params.link_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("tmenw_roundtrip_time: bad parameters");
  }
  const double message =
      static_cast<double>(grid_points * params.word_bytes) / params.link_bandwidth_bps;
  // Up: every stage must receive the full partial grids and accumulate
  // before forwarding (store-and-forward).
  const double up = params.gather_stages * (params.stage_latency_s + message);
  // Down: the result streams through (cut-through broadcast).
  const double down = params.gather_stages * params.stage_latency_s + message;
  return up + params.fft_time_s + down;
}

}  // namespace tme::hw
