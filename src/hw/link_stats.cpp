#include "hw/link_stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tme::hw {

namespace {

constexpr const char* kDirNames[LinkTelemetry::kDirections] = {
    "+x", "-x", "+y", "-y", "+z", "-z"};

// Direction of the single-hop step a -> b on the torus (they must be
// neighbours); -1 when the step is not a single hop.
int step_direction(const TorusTopology& topo, const NodeCoord& a,
                   const NodeCoord& b) {
  auto axis_step = [](std::size_t from, std::size_t to, std::size_t extent,
                      int plus, int minus) -> int {
    if (to == (from + 1) % extent) return plus;
    if ((to + 1) % extent == from) return minus;
    return -1;
  };
  if (a.y == b.y && a.z == b.z && a.x != b.x)
    return axis_step(a.x, b.x, topo.nx(), 0, 1);
  if (a.x == b.x && a.z == b.z && a.y != b.y)
    return axis_step(a.y, b.y, topo.ny(), 2, 3);
  if (a.x == b.x && a.y == b.y && a.z != b.z)
    return axis_step(a.z, b.z, topo.nz(), 4, 5);
  return -1;
}

}  // namespace

const char* LinkTelemetry::direction_name(int dir) { return kDirNames[dir]; }

LinkTelemetry::LinkTelemetry(const TorusTopology& topo)
    : topo_(topo), stats_(topo.node_count() * kDirections) {}

std::string LinkTelemetry::link_name(std::size_t index) const {
  const NodeCoord c = topo_.coord(index / kDirections);
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + "," +
         std::to_string(c.z) + ")" + kDirNames[index % kDirections];
}

void LinkTelemetry::record_transfer(std::size_t from, std::size_t to,
                                    std::uint64_t bytes,
                                    std::uint64_t crc_retries) {
  if (from == to) return;
  const std::vector<NodeCoord> route =
      topo_.route(topo_.coord(from), topo_.coord(to));
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const int dir = step_direction(topo_, route[i], route[i + 1]);
    if (dir < 0) continue;  // defensive: route() only produces unit steps
    LinkStat& s = stats_[link_index(topo_.index(route[i]), dir)];
    s.bytes += bytes;
    s.messages += 1;
    if (i + 2 == route.size()) s.crc_retries += crc_retries;
  }
}

void LinkTelemetry::record_link(std::size_t node, int dir, std::uint64_t bytes,
                                std::uint64_t messages,
                                std::uint64_t crc_retries) {
  LinkStat& s = stats_[link_index(node, dir)];
  s.bytes += bytes;
  s.messages += messages;
  s.crc_retries += crc_retries;
}

std::uint64_t LinkTelemetry::total_bytes() const {
  std::uint64_t sum = 0;
  for (const LinkStat& s : stats_) sum += s.bytes;
  return sum;
}

std::uint64_t LinkTelemetry::total_messages() const {
  std::uint64_t sum = 0;
  for (const LinkStat& s : stats_) sum += s.messages;
  return sum;
}

std::uint64_t LinkTelemetry::total_crc_retries() const {
  std::uint64_t sum = 0;
  for (const LinkStat& s : stats_) sum += s.crc_retries;
  return sum;
}

std::size_t LinkTelemetry::busiest_link() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < stats_.size(); ++i) {
    if (stats_[i].bytes > stats_[best].bytes) best = i;
  }
  return best;
}

double LinkTelemetry::utilization(std::size_t index, const NetworkParams& nw,
                                  double window_s) const {
  if (window_s <= 0.0) return 0.0;
  return static_cast<double>(stats_[index].bytes) /
         (nw.effective_bandwidth() * window_s);
}

double LinkTelemetry::queue_occupancy(std::size_t index,
                                      const NetworkParams& nw,
                                      double window_s) const {
  const double rho = utilization(index, nw, window_s);
  if (rho >= 1.0) return 1e3;
  return std::min(1e3, rho * rho / (2.0 * (1.0 - rho)));
}

void LinkTelemetry::record_gauges(const NetworkParams& nw,
                                  double window_s) const {
  if constexpr (!obs::kMetricsEnabled) {
    (void)nw;
    (void)window_s;
    return;
  } else {
    obs::Registry& reg = obs::Registry::global();
    double max_util = 0.0, sum_util = 0.0;
    std::size_t active = 0;
    for (std::size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].bytes == 0) continue;
      const double u = utilization(i, nw, window_s);
      max_util = std::max(max_util, u);
      sum_util += u;
      ++active;
    }
    reg.gauge_set("hw/link/total_bytes", static_cast<double>(total_bytes()));
    reg.gauge_set("hw/link/total_messages",
                  static_cast<double>(total_messages()));
    reg.gauge_set("hw/link/crc_retries",
                  static_cast<double>(total_crc_retries()));
    reg.gauge_set("hw/link/active_links", static_cast<double>(active));
    reg.gauge_set("hw/link/max_utilization", max_util);
    reg.gauge_set("hw/link/mean_utilization",
                  active == 0 ? 0.0 : sum_util / static_cast<double>(active));
  }
}

obs::JsonValue LinkTelemetry::report_json(const NetworkParams& nw,
                                          double window_s) const {
  obs::JsonValue root = obs::JsonValue::make_object();
  auto& obj = root.as_object();
  obj["window_s"] = obs::JsonValue::make_number(window_s);
  obj["total_bytes"] =
      obs::JsonValue::make_number(static_cast<double>(total_bytes()));
  obj["total_messages"] =
      obs::JsonValue::make_number(static_cast<double>(total_messages()));
  obj["crc_retries"] =
      obs::JsonValue::make_number(static_cast<double>(total_crc_retries()));
  const std::size_t busiest = busiest_link();
  obj["busiest_link"] = obs::JsonValue::make_string(
      total_bytes() == 0 ? "" : link_name(busiest));

  obs::JsonValue links = obs::JsonValue::make_object();
  auto& links_obj = links.as_object();
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const LinkStat& s = stats_[i];
    if (s.bytes == 0 && s.crc_retries == 0) continue;
    obs::JsonValue entry = obs::JsonValue::make_object();
    auto& e = entry.as_object();
    e["bytes"] = obs::JsonValue::make_number(static_cast<double>(s.bytes));
    e["messages"] =
        obs::JsonValue::make_number(static_cast<double>(s.messages));
    e["crc_retries"] =
        obs::JsonValue::make_number(static_cast<double>(s.crc_retries));
    e["utilization"] = obs::JsonValue::make_number(utilization(i, nw, window_s));
    e["queue_occupancy"] =
        obs::JsonValue::make_number(queue_occupancy(i, nw, window_s));
    links_obj[link_name(i)] = std::move(entry);
  }
  obj["links"] = std::move(links);
  return root;
}

void LinkTelemetry::emit_trace_counters(const NetworkParams& nw,
                                        double window_s, double ts_us) const {
  if (!obs::tracing_active()) return;
  obs::Tracer& tracer = obs::Tracer::global();
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const LinkStat& s = stats_[i];
    if (s.bytes == 0) continue;
    const obs::TrackId track = tracer.track("torus links", link_name(i));
    tracer.counter(track, "bytes", ts_us, static_cast<double>(s.bytes));
    tracer.counter(track, "util_pct", ts_us,
                   100.0 * utilization(i, nw, window_s));
  }
}

}  // namespace tme::hw
