// ABFT-guarded hardware-functional TME pipeline with localized recovery.
//
// This is the online SDC defense of the simulated machine: the full TME
// evaluation routed through the hardware datapath models (LRU charge
// assignment / back interpolation, GCU axis passes, FPGA top-level FFT),
// with an ABFT invariant (core/abft) verified after every stage and a
// *localized* recompute on violation — only the stage (and for the GCU only
// the axis pass) that failed its checksum is re-executed, with SDC
// injection suspended for the retry (an upset is transient, so the re-run
// is clean and bitwise identical to a fault-free evaluation by
// construction).  A stage that keeps violating after the retry budget marks
// the evaluation unrecovered, which the MD-level TME_GUARDRAIL ladder
// escalates to a checkpoint rollback or abort.
//
// Stage map (violation callback + SdcEvent context use these tags):
//   0 charge assignment   (LRU)    index: -1
//   1 restriction         (GCU)    index: coarse level produced (2 .. L+1)
//   2 top-level solve     (FPGA)   index: -1
//   3 prolongation        (GCU)    index: level produced (1 .. L)
//   4 tensor convolution  (GCU)    index: level*100 + term*10 + axis
//   5 back interpolation  (LRU)    index: -1
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/abft.hpp"
#include "core/tme.hpp"
#include "hw/fault.hpp"
#include "hw/lru_functional.hpp"

namespace tme::hw {

enum class GuardedStage {
  kChargeAssign = 0,
  kRestriction = 1,
  kTopSolve = 2,
  kProlongation = 3,
  kConvolution = 4,
  kBackInterpolate = 5,
};

const char* to_string(GuardedStage stage);

struct GuardedTmeConfig {
  // Master switch: false runs the identical pipeline with every invariant
  // check and recompute skipped — the baseline the bitwise acceptance test
  // compares against.
  bool checks_enabled = true;
  // Localized retries per stage attempt before the evaluation is declared
  // unrecovered.
  int max_stage_recomputes = 2;
  // Multiplies every ABFT tolerance (see abft::CheckSet).
  double tolerance_scale = 1.0;
  LruFixedFormats lru_formats{};
};

struct GuardedTmeReport {
  std::size_t checks_run = 0;
  std::size_t violations = 0;
  std::size_t stage_recomputes = 0;  // localized re-executions that succeeded
  bool recovered = true;  // false when a stage stayed bad after its retries
  std::vector<abft::Violation> details;
};

class GuardedTmePipeline {
 public:
  // `faults` may be null (no injection); the injector is shared with the
  // rest of the simulated machine and is petted with stage context so every
  // recorded SdcEvent names the stage it hit.
  GuardedTmePipeline(const Box& box, const TmeParams& params,
                     GuardedTmeConfig config, FaultInjector* faults = nullptr);

  const Tme& tme() const { return tme_; }
  const GuardedTmeConfig& config() const { return config_; }

  // Invoked once per ABFT violation with the stage and its locator index
  // (see the stage map above) — the hook par::HealthMonitor attributes to
  // grid blocks / nodes.  Called before the localized recompute, so repeated
  // firings for one stage mean the retry also failed.
  void set_violation_callback(std::function<void(GuardedStage, int)> cb) {
    on_violation_ = std::move(cb);
  }

  // Full long-range evaluation through the hardware-functional datapaths
  // with online ABFT verification and localized recompute.
  CoulombResult compute(std::span<const Vec3> positions,
                        std::span<const double> charges,
                        GuardedTmeReport* report = nullptr) const;

 private:
  // Runs `stage_fn` and then `verify` (which appends to `checks`); on
  // violation fires the callback and retries with SDC suspended.  Returns
  // false when the stage stayed bad after the retry budget.
  bool guarded_stage(GuardedStage stage, int index,
                     const std::function<void()>& stage_fn,
                     const std::function<bool(abft::CheckSet&)>& verify,
                     abft::CheckSet& checks, GuardedTmeReport& report) const;

  // One 1D axis pass through the GCU functional model when the kernel fits
  // the level period, else the library path — both satisfy the same
  // per-line checksum.
  Grid3d axis_pass(const Grid3d& in, const Kernel1d& kernel, int axis) const;

  Box box_;
  GuardedTmeConfig config_;
  FaultInjector* faults_;
  Tme tme_;
  std::vector<double> top_influence_;  // 16^3 FPGA path only, else empty
  std::function<void(GuardedStage, int)> on_violation_;
};

}  // namespace tme::hw
