#include "hw/timechart.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "hw/track_meta.hpp"

namespace tme::hw {

std::string render_timechart(const std::vector<ScheduledTask>& schedule, int width) {
  double makespan = 0.0;
  for (const auto& t : schedule) makespan = std::max(makespan, t.end);
  if (makespan <= 0.0 || width < 10) return "(empty schedule)\n";

  // Preserve first-appearance lane order.
  std::vector<std::string> lanes;
  for (const auto& t : schedule) {
    if (std::find(lanes.begin(), lanes.end(), t.spec.lane) == lanes.end()) {
      lanes.push_back(t.spec.lane);
    }
  }

  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-7s 0%*s%.1f us\n", "", width - 6, "",
                makespan * 1e6);
  out += buf;
  for (const auto& lane : lanes) {
    std::string bar(static_cast<std::size_t>(width), '.');
    for (const auto& t : schedule) {
      if (t.spec.lane != lane || t.spec.duration <= 0.0) continue;
      auto col = [&](double time) {
        return std::min<std::size_t>(
            static_cast<std::size_t>(time / makespan * width),
            static_cast<std::size_t>(width - 1));
      };
      const std::size_t a = col(t.start);
      const std::size_t b = std::max(a, col(t.end));
      const char fill = t.spec.name.empty() ? '#' : t.spec.name[0];
      for (std::size_t c = a; c <= b; ++c) bar[c] = fill;
    }
    std::snprintf(buf, sizeof(buf), "%-7s [%s]\n", lane.c_str(), bar.c_str());
    out += buf;
  }
  // Legend: lane key -> track label, same metadata the trace exporter uses.
  for (const auto& lane : lanes) {
    std::snprintf(buf, sizeof(buf), "  %-7s %s\n", lane.c_str(),
                  lane_label(lane).c_str());
    out += buf;
  }
  return out;
}

std::string render_task_table(const std::vector<ScheduledTask>& schedule) {
  std::string out =
      "  task                    unit                              start(us)   end(us)   dur(us)\n";
  char buf[200];
  std::vector<ScheduledTask> sorted = schedule;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              return a.start < b.start;
            });
  for (const auto& t : sorted) {
    std::snprintf(buf, sizeof(buf), "  %-23s %-32s %9.2f %9.2f %9.2f\n",
                  t.spec.name.c_str(), lane_label(t.spec.lane).c_str(),
                  t.start * 1e6, t.end * 1e6, t.spec.duration * 1e6);
    out += buf;
  }
  return out;
}

}  // namespace tme::hw
