// Functional (datapath-level) model of the grid convolution unit.
//
// The GCU manipulates 4x4x4 grid blocks as its basic data unit (paper
// Sec. IV.B).  For an incoming block h with grid origin m and a 1D kernel
// K^{nu,j}, each of its rows along the convolution axis updates the local
// grid points g within kernel range (paper Eq. 18):
//
//   g_n  <-  g_n + sum_{i=0}^{3} h_{m+i} K_{n - m - i},
//   n in [m - g_c, m + 3 + g_c] along the axis, same perpendicular index.
//
// This module executes exactly that computation, block by block, row by
// row, so the hardware dataflow itself can be tested: a full axis pass over
// all streamed blocks must reproduce the library's convolve_axis, and the
// number of grid-point evaluations it consumes must equal the workload the
// timing model (gcu_model.hpp) charges for.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "grid/grid3d.hpp"
#include "grid/separable_conv.hpp"
#include "hw/fault.hpp"

namespace tme::hw {

// A 4x4x4 block with its global grid origin (multiples of 4).
struct GcuBlock {
  std::array<std::size_t, 3> origin{};
  std::array<double, 64> values{};

  double at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return values[(iz * 4 + iy) * 4 + ix];
  }
};

// Cut a periodic level grid (extents multiples of 4) into blocks.
std::vector<GcuBlock> blocks_of(const Grid3d& grid);

// One node's GCU with its local slice of the level grid.
class GcuFunctionalUnit {
 public:
  // `origin` is the first owned global cell, `local` the owned extents,
  // `level` the global (periodic) level extents.
  GcuFunctionalUnit(std::array<std::size_t, 3> origin, GridDims local,
                    GridDims level);

  // Processes one incoming block against a 1D kernel along `axis`
  // (0 = x, 1 = y, 2 = z), accumulating into the local grid memory.
  // Returns the grid-point evaluations spent on owned points (the unit of
  // the timing model's throughput).  A non-null `faults` with sdc_rate > 0
  // exposes every row accumulator to a seeded mantissa bit flip
  // (SdcSite::kGcuAccumulator) — caught by the per-line convolution
  // checksums in core/abft.
  std::size_t process_block(const GcuBlock& block, const Kernel1d& kernel,
                            int axis, FaultInjector* faults = nullptr);

  const Grid3d& memory() const { return memory_; }
  void clear() { memory_.fill(0.0); }

 private:
  std::array<std::size_t, 3> origin_;
  GridDims local_;
  GridDims level_;
  Grid3d memory_;  // local dims
};

// Streams every block of `in` through a set of units tiling the level grid
// and assembles the result — must equal convolve_axis(in, kernel, axis).
// `evals` (optional) returns the total grid-point evaluations consumed.
Grid3d gcu_functional_axis_pass(const Grid3d& in, const Kernel1d& kernel,
                                int axis, GridDims local,
                                std::size_t* evals = nullptr,
                                FaultInjector* faults = nullptr);

}  // namespace tme::hw
