#include "hw/lru_model.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::hw {

double lru_pass_time(const LruParams& params, std::size_t atoms_per_node,
                     double imbalance) {
  if (params.clock_hz <= 0.0 || params.units_per_chip < 1 || imbalance < 1.0) {
    throw std::invalid_argument("lru_pass_time: bad parameters");
  }
  const double atoms_per_unit = static_cast<double>(atoms_per_node) /
                                static_cast<double>(params.units_per_chip) *
                                imbalance;
  const double cycles =
      atoms_per_unit * params.cycles_per_atom + params.pipeline_fill_cycles;
  return cycles / params.clock_hz;
}

}  // namespace tme::hw
