// Timing model of the TME top-level network (TMENW, paper Sec. IV.C):
// an octree of FPGAs (SoC -> IO/control FPGA -> leaf FPGA -> root FPGA)
// over 40 Gbps optical links that gathers the coarse grid charges,
// runs the 16^3 3D-FFT convolution on the root FPGA (330 cycles at
// 156.25 MHz = 2.112 us), and scatters the grid potentials back.
#pragma once

#include <cstddef>

namespace tme::hw {

struct TmenwParams {
  double link_bandwidth_bps = 5.0e9;  // 40 Gbps after 64B66B decoding
  double stage_latency_s = 0.5e-6;    // framing + FPGA forwarding per stage
  int gather_stages = 3;              // board -> control -> leaf -> root
  double fft_time_s = 2.112e-6;       // measured: 330 cycles at 156.25 MHz
  std::size_t word_bytes = 4;
};

// Round trip for a coarse grid of `grid_points` values: staged gather with
// per-stage accumulation (store-and-forward), FFT convolution, cut-through
// broadcast back down.
double tmenw_roundtrip_time(const TmenwParams& params, std::size_t grid_points);

}  // namespace tme::hw
