// Display metadata for the simulated machine's execution lanes, shared by
// the ASCII timechart and the Perfetto trace exporter so both render the
// same labels for the same hardware units.
#pragma once

#include <string>
#include <vector>

#include "hw/event_sim.hpp"

namespace tme::hw {

struct LaneMeta {
  const char* lane;   // the TaskSpec::lane key ("GP", "GCU", ...)
  const char* label;  // human-readable row label
  const char* kind;   // "software" or "hardware"
};

// The known lanes, in the paper's Fig. 9 row order.
const std::vector<LaneMeta>& lane_metadata();

// Full label for a lane key; unknown lanes fall back to the key itself.
std::string lane_label(const std::string& lane);

// Replays a completed schedule into the global tracer as simulated-time
// spans: one track per lane (labelled via lane_metadata) grouped under
// `process`, one "X" span per task, an instant "retry" event per replayed
// attempt (attempts > 1) and an instant "gave up" event for tasks that
// exhausted the retry bound.  Simulated seconds map to trace microseconds
// 1:1 (the step is a ~200 us object; Perfetto shows it full-scale).  No-op
// unless tracing is active.
void trace_schedule(const std::vector<ScheduledTask>& schedule,
                    const std::string& process);

}  // namespace tme::hw
