#include "hw/fault.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace tme::hw {

FaultConfig fault_config_from_env() {
  FaultConfig config;
  config.seed = env::u64_or("TME_FAULT_SEED", config.seed);
  config.link_error_rate =
      env::probability_or("TME_FAULT_LINK_ERROR_RATE", config.link_error_rate);
  config.sdc_rate = env::probability_or("TME_FAULT_SDC_RATE", config.sdc_rate);
  config.packet_drop_rate = env::probability_or("TME_FAULT_PACKET_DROP_RATE",
                                                config.packet_drop_rate);
  config.packet_corrupt_rate = env::probability_or(
      "TME_FAULT_PACKET_CORRUPT_RATE", config.packet_corrupt_rate);
  config.kill_worker_rank = env::bounded_long_or(
      "TME_FAULT_KILL_WORKER_RANK", config.kill_worker_rank, -1, 1023);
  config.kill_worker_task = env::bounded_long_or(
      "TME_FAULT_KILL_WORKER_TASK", config.kill_worker_task, -1, 1L << 40);
  config.hang_worker_task = env::bounded_long_or(
      "TME_FAULT_HANG_WORKER_TASK", config.hang_worker_task, -1, 1L << 40);
  config.worker_delay_ms = env::bounded_long_or(
      "TME_FAULT_WORKER_DELAY_MS", config.worker_delay_ms, 0, 600000);
  obs::manifest_set("fault_seed", static_cast<double>(config.seed));
  return config;
}

const char* to_string(SdcSite site) {
  switch (site) {
    case SdcSite::kLruAccumulator: return "lru_accumulator";
    case SdcSite::kGcuAccumulator: return "gcu_accumulator";
    case SdcSite::kFpgaFft: return "fpga_fft";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.link_error_rate < 0.0 || config_.link_error_rate > 1.0) {
    throw std::invalid_argument("FaultInjector: link_error_rate outside [0, 1]");
  }
  if (config_.sdc_rate < 0.0 || config_.sdc_rate > 1.0) {
    throw std::invalid_argument("FaultInjector: sdc_rate outside [0, 1]");
  }
  if (config_.max_retries < 0) {
    throw std::invalid_argument("FaultInjector: negative max_retries");
  }
}

void FaultInjector::kill_node(std::size_t node) {
  dead_nodes_.insert(node);
  TME_COUNTER_ADD("hw/fault/dead_nodes", 1);
}

void FaultInjector::kill_link(std::size_t a, std::size_t b) {
  if (a == b) throw std::invalid_argument("FaultInjector::kill_link: self link");
  if (a > b) std::swap(a, b);
  dead_links_.insert({a, b});
  TME_COUNTER_ADD("hw/fault/dead_links", 1);
}

void FaultInjector::kill_random_nodes(std::size_t count, std::size_t node_count) {
  if (count > node_count) {
    throw std::invalid_argument("FaultInjector::kill_random_nodes: count > nodes");
  }
  // Rejection sampling over a fresh SplitMix stream keeps the kill set
  // independent of how many corruption draws happened before this call.
  SplitMix64 sm(config_.seed ^ 0x6b6c6c6e6f646573ULL);
  std::size_t killed = 0;
  while (killed < count) {
    const std::size_t node = static_cast<std::size_t>(sm.next() % node_count);
    if (dead_nodes_.count(node) != 0) continue;
    kill_node(node);
    ++killed;
  }
}

bool FaultInjector::link_dead(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  return dead_links_.count({a, b}) != 0;
}

namespace {

// Per-site injection counters, so a soak can see where the corruption
// landed without parsing the event log.
void count_sdc(SdcSite site) {
  TME_COUNTER_ADD("hw/fault/sdc_injected", 1);
  switch (site) {
    case SdcSite::kLruAccumulator:
      TME_COUNTER_ADD("hw/fault/sdc_lru", 1);
      break;
    case SdcSite::kGcuAccumulator:
      TME_COUNTER_ADD("hw/fault/sdc_gcu", 1);
      break;
    case SdcSite::kFpgaFft:
      TME_COUNTER_ADD("hw/fault/sdc_fpga", 1);
      break;
  }
}

}  // namespace

std::int64_t FaultInjector::sdc_fixed(std::int64_t raw, int bits, SdcSite site,
                                      double resolution) const {
  if (!sdc_enabled() || rng_.uniform() >= config_.sdc_rate) return raw;
  const int bit = static_cast<int>(rng_.next_u64() % static_cast<std::uint64_t>(bits));
  const std::int64_t flipped = raw ^ (std::int64_t{1} << bit);
  sdc_events_.push_back({site, bit, static_cast<double>(raw) * resolution,
                         static_cast<double>(flipped) * resolution, sdc_stage_,
                         sdc_index_});
  count_sdc(site);
  return flipped;
}

double FaultInjector::sdc_double(double value, SdcSite site) const {
  if (!sdc_enabled() || rng_.uniform() >= config_.sdc_rate) return value;
  // Mantissa-only flip: the upset lands in the accumulator register's
  // fraction field, scaling the damage with the accumulated magnitude.
  const int bit = static_cast<int>(rng_.next_u64() % 52);
  std::uint64_t word;
  std::memcpy(&word, &value, sizeof(word));
  word ^= std::uint64_t{1} << bit;
  double flipped;
  std::memcpy(&flipped, &word, sizeof(flipped));
  sdc_events_.push_back({site, bit, value, flipped, sdc_stage_, sdc_index_});
  count_sdc(site);
  return flipped;
}

float FaultInjector::sdc_float(float value, SdcSite site) const {
  if (!sdc_enabled() || rng_.uniform() >= config_.sdc_rate) return value;
  const int bit = static_cast<int>(rng_.next_u64() % 32);
  std::uint32_t word;
  std::memcpy(&word, &value, sizeof(word));
  word ^= std::uint32_t{1} << bit;
  float flipped;
  std::memcpy(&flipped, &word, sizeof(flipped));
  sdc_events_.push_back({site, bit, static_cast<double>(value),
                         static_cast<double>(flipped), sdc_stage_, sdc_index_});
  count_sdc(site);
  return flipped;
}

bool FaultInjector::attempt_corrupted(std::size_t hops) const {
  const double p = config_.link_error_rate;
  if (p <= 0.0 || hops == 0) return false;
  // Route survives only if every link does: P(corrupt) = 1 - (1 - p)^hops.
  const double p_route = 1.0 - std::pow(1.0 - p, static_cast<double>(hops));
  const bool corrupt = rng_.uniform() < p_route;
  if (corrupt) {
    ++injected_errors_;
    TME_COUNTER_ADD("hw/fault/link_errors", 1);
  }
  return corrupt;
}

}  // namespace tme::hw
