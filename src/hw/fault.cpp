#include "hw/fault.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace tme::hw {

FaultConfig fault_config_from_env() {
  FaultConfig config;
  if (const char* seed = std::getenv("TME_FAULT_SEED"); seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(seed, &end, 10);
    if (end == seed || *end != '\0') {
      log_warn("TME_FAULT_SEED='", seed, "' is not an unsigned integer; keeping seed ",
               config.seed);
    } else {
      config.seed = static_cast<std::uint64_t>(v);
    }
  }
  if (const char* rate = std::getenv("TME_FAULT_LINK_ERROR_RATE");
      rate != nullptr && *rate != '\0') {
    char* end = nullptr;
    const double v = std::strtod(rate, &end);
    if (end == rate || *end != '\0' || !(v >= 0.0) || v > 1.0) {
      log_warn("TME_FAULT_LINK_ERROR_RATE='", rate,
               "' is not a probability in [0, 1]; keeping ", config.link_error_rate);
    } else {
      config.link_error_rate = v;
    }
  }
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.link_error_rate < 0.0 || config_.link_error_rate > 1.0) {
    throw std::invalid_argument("FaultInjector: link_error_rate outside [0, 1]");
  }
  if (config_.max_retries < 0) {
    throw std::invalid_argument("FaultInjector: negative max_retries");
  }
}

void FaultInjector::kill_node(std::size_t node) {
  dead_nodes_.insert(node);
  TME_COUNTER_ADD("hw/fault/dead_nodes", 1);
}

void FaultInjector::kill_link(std::size_t a, std::size_t b) {
  if (a == b) throw std::invalid_argument("FaultInjector::kill_link: self link");
  if (a > b) std::swap(a, b);
  dead_links_.insert({a, b});
  TME_COUNTER_ADD("hw/fault/dead_links", 1);
}

void FaultInjector::kill_random_nodes(std::size_t count, std::size_t node_count) {
  if (count > node_count) {
    throw std::invalid_argument("FaultInjector::kill_random_nodes: count > nodes");
  }
  // Rejection sampling over a fresh SplitMix stream keeps the kill set
  // independent of how many corruption draws happened before this call.
  SplitMix64 sm(config_.seed ^ 0x6b6c6c6e6f646573ULL);
  std::size_t killed = 0;
  while (killed < count) {
    const std::size_t node = static_cast<std::size_t>(sm.next() % node_count);
    if (dead_nodes_.count(node) != 0) continue;
    kill_node(node);
    ++killed;
  }
}

bool FaultInjector::link_dead(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  return dead_links_.count({a, b}) != 0;
}

bool FaultInjector::attempt_corrupted(std::size_t hops) const {
  const double p = config_.link_error_rate;
  if (p <= 0.0 || hops == 0) return false;
  // Route survives only if every link does: P(corrupt) = 1 - (1 - p)^hops.
  const double p_route = 1.0 - std::pow(1.0 - p, static_cast<double>(hops));
  const bool corrupt = rng_.uniform() < p_route;
  if (corrupt) {
    ++injected_errors_;
    TME_COUNTER_ADD("hw/fault/link_errors", 1);
  }
  return corrupt;
}

}  // namespace tme::hw
