#include "hw/fpga_fft.hpp"

#include <cmath>
#include <stdexcept>

namespace tme::hw {

namespace {

using CF = std::complex<float>;

// W16^k twiddles, forward sign convention exp(-2 pi i k / 16).
const CF* twiddles16() {
  static CF table[16];
  static bool init = false;
  if (!init) {
    for (int k = 0; k < 16; ++k) {
      const double ang = -2.0 * M_PI * k / 16.0;
      table[k] = {static_cast<float>(std::cos(ang)),
                  static_cast<float>(std::sin(ang))};
    }
    init = true;
  }
  return table;
}

// 4-point DFT (radix-4 butterfly: additions and +-i swaps only).
void dft4(CF& a, CF& b, CF& c, CF& d, bool inverse) {
  const CF t0 = a + c;
  const CF t1 = a - c;
  const CF t2 = b + d;
  CF t3 = b - d;
  // multiply by -i (forward) or +i (inverse)
  t3 = inverse ? CF{-t3.imag(), t3.real()} : CF{t3.imag(), -t3.real()};
  a = t0 + t2;
  b = t1 + t3;
  c = t0 - t2;
  d = t1 - t3;
}

}  // namespace

void cfft16(std::complex<float>* data, bool inverse) {
  const CF* w = twiddles16();
  // Stage 1: DFT4 over the stride-4 subsequences (n = n0 + 4 n1).
  CF z[4][4];  // z[n0][k1]
  for (int n0 = 0; n0 < 4; ++n0) {
    CF a = data[n0], b = data[n0 + 4], c = data[n0 + 8], d = data[n0 + 12];
    dft4(a, b, c, d, inverse);
    z[n0][0] = a;
    z[n0][1] = b;
    z[n0][2] = c;
    z[n0][3] = d;
  }
  // Stage 2: X[k] = sum_n0 W16^{n0 k} z[n0][k mod 4].
  for (int k = 0; k < 16; ++k) {
    CF acc{0.0f, 0.0f};
    for (int n0 = 0; n0 < 4; ++n0) {
      CF tw = w[(n0 * k) % 16];
      if (inverse) tw = std::conj(tw);
      acc += tw * z[n0][k % 4];
    }
    data[k] = inverse ? acc * (1.0f / 16.0f) : acc;
  }
}

PackedSpectra real_pair_forward(const float* line_a, const float* line_b) {
  CF packed[16];
  for (int n = 0; n < 16; ++n) packed[n] = {line_a[n], line_b[n]};
  cfft16(packed, false);
  PackedSpectra out;
  for (int k = 0; k <= 8; ++k) {
    const CF zk = packed[k];
    const CF zn = std::conj(packed[(16 - k) % 16]);
    out.a[k] = 0.5f * (zk + zn);
    // (zk - zn) / (2i) = -i/2 * (zk - zn)
    const CF diff = zk - zn;
    out.b[k] = CF{0.5f * diff.imag(), -0.5f * diff.real()};
  }
  // Wave numbers 0 and 8 are purely real for real input — the hardware's
  // dedicated post/preprocess-08 path; enforce exactly.
  out.a[0] = {out.a[0].real(), 0.0f};
  out.b[0] = {out.b[0].real(), 0.0f};
  out.a[8] = {out.a[8].real(), 0.0f};
  out.b[8] = {out.b[8].real(), 0.0f};
  return out;
}

void real_pair_inverse(const PackedSpectra& spectra, float* line_a, float* line_b) {
  CF packed[16];
  for (int k = 0; k <= 8; ++k) {
    const CF ik_b{-spectra.b[k].imag(), spectra.b[k].real()};  // i * B_k
    packed[k] = spectra.a[k] + ik_b;
  }
  for (int k = 9; k < 16; ++k) {
    const CF a = std::conj(spectra.a[16 - k]);
    const CF b = std::conj(spectra.b[16 - k]);
    packed[k] = a + CF{-b.imag(), b.real()};
  }
  cfft16(packed, true);
  for (int n = 0; n < 16; ++n) {
    line_a[n] = packed[n].real();
    line_b[n] = packed[n].imag();
  }
}

std::vector<float> fpga_top_level_convolve(const std::vector<float>& charges,
                                           const std::vector<double>& green,
                                           FaultInjector* faults,
                                           FpgaAbftProbe* probe) {
  constexpr std::size_t n = 16;
  if (charges.size() != n * n * n || green.size() != n * n * n) {
    throw std::invalid_argument("fpga_top_level_convolve: 16^3 data required");
  }
  // Half-spectrum workspace: kx = 0..8 (Hermitian symmetry in x), full y/z.
  constexpr std::size_t hx = 9;
  std::vector<CF> work(hx * n * n);
  auto at = [&](std::size_t kx, std::size_t y, std::size_t z) -> CF& {
    return work[(z * n + y) * hx + kx];
  };
  // SDC exposure of a spectrum word: the real and imaginary parts are two
  // single-precision datapath words on the FPGA, so each gets its own draw.
  const bool sdc = faults != nullptr && faults->sdc_enabled();
  auto corrupt = [&](CF& w) {
    if (!sdc) return;
    w = {faults->sdc_float(w.real(), SdcSite::kFpgaFft),
         faults->sdc_float(w.imag(), SdcSite::kFpgaFft)};
  };
  // Hermitian-unfolded spectrum energy: interior kx planes stand for their
  // conjugate mirrors too, so they count twice.
  auto spectrum_energy = [&] {
    double e = 0.0;
    for (std::size_t kz = 0; kz < n; ++kz) {
      for (std::size_t ky = 0; ky < n; ++ky) {
        for (std::size_t kx = 0; kx < hx; ++kx) {
          const double w = (kx == 0 || kx == 8) ? 1.0 : 2.0;
          e += w * std::norm(at(kx, ky, kz));
        }
      }
    }
    return e / static_cast<double>(n * n * n);
  };

  if (probe != nullptr) {
    probe->input_energy = 0.0;
    for (const float c : charges) {
      probe->input_energy += static_cast<double>(c) * static_cast<double>(c);
    }
  }

  // Forward x through the real-pair packing (two lines per CFFT16 call).
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; y += 2) {
      float line_a[16], line_b[16];
      for (std::size_t x = 0; x < n; ++x) {
        line_a[x] = charges[(z * n + y) * n + x];
        line_b[x] = charges[(z * n + y + 1) * n + x];
      }
      const PackedSpectra s = real_pair_forward(line_a, line_b);
      for (std::size_t kx = 0; kx < hx; ++kx) {
        at(kx, y, z) = s.a[kx];
        at(kx, y + 1, z) = s.b[kx];
        corrupt(at(kx, y, z));
        corrupt(at(kx, y + 1, z));
      }
    }
  }
  // Forward y, then z: plain complex CFFT16 lines.
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t kx = 0; kx < hx; ++kx) {
      CF line[16];
      for (std::size_t y = 0; y < n; ++y) line[y] = at(kx, y, z);
      cfft16(line, false);
      for (std::size_t y = 0; y < n; ++y) {
        at(kx, y, z) = line[y];
        corrupt(at(kx, y, z));
      }
    }
  }
  for (std::size_t ky = 0; ky < n; ++ky) {
    for (std::size_t kx = 0; kx < hx; ++kx) {
      CF line[16];
      for (std::size_t z = 0; z < n; ++z) line[z] = at(kx, ky, z);
      cfft16(line, false);
      for (std::size_t z = 0; z < n; ++z) {
        at(kx, ky, z) = line[z];
        corrupt(at(kx, ky, z));
      }
    }
  }
  if (probe != nullptr) probe->forward_energy = spectrum_energy();
  // Green multiply (folded into the post/preprocess units on the FPGA).
  for (std::size_t kz = 0; kz < n; ++kz) {
    for (std::size_t ky = 0; ky < n; ++ky) {
      for (std::size_t kx = 0; kx < hx; ++kx) {
        at(kx, ky, kz) *= static_cast<float>(green[(kz * n + ky) * n + kx]);
      }
    }
  }
  if (probe != nullptr) probe->green_energy = spectrum_energy();
  // Inverse z, inverse y.
  for (std::size_t ky = 0; ky < n; ++ky) {
    for (std::size_t kx = 0; kx < hx; ++kx) {
      CF line[16];
      for (std::size_t z = 0; z < n; ++z) line[z] = at(kx, ky, z);
      cfft16(line, true);
      for (std::size_t z = 0; z < n; ++z) {
        at(kx, ky, z) = line[z];
        corrupt(at(kx, ky, z));
      }
    }
  }
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t kx = 0; kx < hx; ++kx) {
      CF line[16];
      for (std::size_t y = 0; y < n; ++y) line[y] = at(kx, y, z);
      cfft16(line, true);
      for (std::size_t y = 0; y < n; ++y) {
        at(kx, y, z) = line[y];
        corrupt(at(kx, y, z));
      }
    }
  }
  // Inverse x through the packing trick, two real lines at a time.
  std::vector<float> out(n * n * n);
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; y += 2) {
      PackedSpectra s;
      for (std::size_t kx = 0; kx < hx; ++kx) {
        s.a[kx] = at(kx, y, z);
        s.b[kx] = at(kx, y + 1, z);
        // Last chance for a spectrum-side flip: past here the data is the
        // output itself and an energy check could no longer see it.
        corrupt(s.a[kx]);
        corrupt(s.b[kx]);
      }
      float line_a[16], line_b[16];
      real_pair_inverse(s, line_a, line_b);
      for (std::size_t x = 0; x < n; ++x) {
        out[(z * n + y) * n + x] = line_a[x];
        out[(z * n + y + 1) * n + x] = line_b[x];
      }
    }
  }
  if (probe != nullptr) {
    probe->output_energy = 0.0;
    for (const float v : out) {
      probe->output_energy += static_cast<double>(v) * static_cast<double>(v);
    }
  }
  return out;
}

std::size_t fpga_cycle_estimate() {
  // Four CFFT16 units, one 16-point transform each per cycle ("a 64-point
  // complex FFT every cycle").  Real packing halves the x passes.
  const std::size_t x_pass = 128 / 4;      // 128 packed line pairs
  const std::size_t yz_pass = 9 * 16 / 4;  // half-spectrum lines
  const std::size_t pipeline_fill = 20;    // per pass: CFFT16 + post/preprocess
  const std::size_t passes[6] = {x_pass, yz_pass, yz_pass,
                                 yz_pass, yz_pass, x_pass};
  std::size_t cycles = 0;
  for (const std::size_t p : passes) cycles += p + pipeline_fill;
  return cycles;
}

}  // namespace tme::hw
