#include "hw/network_model.hpp"

#include <cmath>
#include <stdexcept>

#include "hw/fault.hpp"
#include "obs/metrics.hpp"

namespace tme::hw {

double transfer_time(const NetworkParams& params, std::size_t bytes, std::size_t hops) {
  if (params.raw_bandwidth_bps <= 0.0 || params.protocol_efficiency <= 0.0 ||
      params.protocol_efficiency > 1.0) {
    throw std::invalid_argument("transfer_time: bad network parameters");
  }
  if (hops == 0 || bytes == 0) return 0.0;
  // Cut-through: the head pays the hop latencies, the body streams behind.
  return static_cast<double>(hops) * params.hop_latency_s +
         static_cast<double>(bytes) / params.effective_bandwidth();
}

TransferOutcome transfer_with_faults(const NetworkParams& params, std::size_t bytes,
                                     std::size_t hops, const FaultInjector& faults) {
  TransferOutcome outcome;
  const double clean = transfer_time(params, bytes, hops);
  if (clean == 0.0) return outcome;  // nothing moved, nothing to corrupt

  const FaultConfig& fc = faults.config();
  TME_COUNTER_ADD("hw/nw/transfers", 1);
  outcome.attempts = 0;
  for (int attempt = 0; attempt <= fc.max_retries; ++attempt) {
    ++outcome.attempts;
    outcome.time_s += clean;
    if (!faults.attempt_corrupted(hops)) return outcome;
    // CRC mismatch at the receiver: wait out the detection window, back off
    // exponentially, retransmit.
    outcome.time_s += fc.detect_timeout_s +
                      fc.retry_backoff_base_s * std::ldexp(1.0, attempt);
    TME_COUNTER_ADD("hw/nw/retries", 1);
  }
  outcome.delivered = false;
  TME_COUNTER_ADD("hw/nw/undelivered", 1);
  return outcome;
}

}  // namespace tme::hw
