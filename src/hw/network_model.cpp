#include "hw/network_model.hpp"

#include <stdexcept>

namespace tme::hw {

double transfer_time(const NetworkParams& params, std::size_t bytes, std::size_t hops) {
  if (params.raw_bandwidth_bps <= 0.0 || params.protocol_efficiency <= 0.0 ||
      params.protocol_efficiency > 1.0) {
    throw std::invalid_argument("transfer_time: bad network parameters");
  }
  if (hops == 0 || bytes == 0) return 0.0;
  // Cut-through: the head pays the hop latencies, the body streams behind.
  return static_cast<double>(hops) * params.hop_latency_s +
         static_cast<double>(bytes) / params.effective_bandwidth();
}

}  // namespace tme::hw
