#include "hw/lru_functional.hpp"

#include <cmath>
#include <stdexcept>

#include "fixed/fixed_point.hpp"
#include "spline/bspline.hpp"

namespace tme::hw {

namespace {

double quantise(double v, int frac_bits) {
  return std::ldexp(std::nearbyint(std::ldexp(v, frac_bits)), -frac_bits);
}

}  // namespace

long lru_spline_weights(double u, std::span<double> values,
                        std::span<double> derivs, const LruFixedFormats& fmt) {
  constexpr int p = 6;  // the hardware fixes the interpolation order
  const long m0 = bspline_weights_central(p, u, values, derivs);
  for (int k = 0; k < p; ++k) {
    values[static_cast<std::size_t>(k)] =
        quantise(values[static_cast<std::size_t>(k)], fmt.weight_frac_bits);
    if (derivs.size() >= static_cast<std::size_t>(p)) {
      derivs[static_cast<std::size_t>(k)] =
          quantise(derivs[static_cast<std::size_t>(k)], fmt.weight_frac_bits);
    }
  }
  return m0;
}

Grid3d lru_charge_assign(const Box& box, GridDims dims,
                         std::span<const Vec3> positions,
                         std::span<const double> charges,
                         const LruFixedFormats& fmt, FaultInjector* faults) {
  if (positions.size() != charges.size()) {
    throw std::invalid_argument("lru_charge_assign: size mismatch");
  }
  constexpr int p = 6;
  const Vec3 h{box.lengths.x / static_cast<double>(dims.nx),
               box.lengths.y / static_cast<double>(dims.ny),
               box.lengths.z / static_cast<double>(dims.nz)};
  // Grid memory in raw 32-bit words (the GM's accumulate-on-write mode).
  std::vector<std::int64_t> raw(dims.total(), 0);
  const FixedFormat grid_fmt{32, fmt.charge_frac_bits};
  const bool sdc = faults != nullptr && faults->sdc_enabled();
  const double resolution = std::ldexp(1.0, -fmt.charge_frac_bits);

  std::vector<double> wx(6), wy(6), wz(6);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 u = hadamard_div(box.wrap(positions[i]), h);
    const long mx0 = lru_spline_weights(u.x, wx, {}, fmt);
    const long my0 = lru_spline_weights(u.y, wy, {}, fmt);
    const long mz0 = lru_spline_weights(u.z, wz, {}, fmt);
    for (int kz = 0; kz < p; ++kz) {
      const std::size_t iz = Grid3d::wrap(mz0 + kz, dims.nz);
      for (int ky = 0; ky < p; ++ky) {
        const std::size_t iy = Grid3d::wrap(my0 + ky, dims.ny);
        for (int kx = 0; kx < p; ++kx) {
          const std::size_t ix = Grid3d::wrap(mx0 + kx, dims.nx);
          // Tensor product rounded to the 32-bit grid word before the GM
          // accumulation (the hardware multiplies in the LRU, accumulates
          // in the GM's special write mode).
          const double contrib = charges[i] * wx[static_cast<std::size_t>(kx)] *
                                 wy[static_cast<std::size_t>(ky)] *
                                 wz[static_cast<std::size_t>(kz)];
          std::int64_t& word = raw[(iz * dims.ny + iy) * dims.nx + ix];
          word += quantize(contrib, grid_fmt);
          if (sdc) {
            word = faults->sdc_fixed(word, 32, SdcSite::kLruAccumulator,
                                     resolution);
          }
        }
      }
    }
  }
  Grid3d out(dims);
  for (std::size_t i = 0; i < raw.size(); ++i) out[i] = dequantize(raw[i], grid_fmt);
  return out;
}

double lru_back_interpolate(const Box& box, const Grid3d& potential,
                            std::span<const Vec3> positions,
                            std::span<const double> charges,
                            std::vector<Vec3>& forces,
                            const LruFixedFormats& fmt, FaultInjector* faults) {
  if (positions.size() != charges.size() || forces.size() != positions.size()) {
    throw std::invalid_argument("lru_back_interpolate: size mismatch");
  }
  constexpr int p = 6;
  const GridDims& dims = potential.dims();
  const Vec3 h{box.lengths.x / static_cast<double>(dims.nx),
               box.lengths.y / static_cast<double>(dims.ny),
               box.lengths.z / static_cast<double>(dims.nz)};
  const FixedFormat grid_fmt{32, fmt.potential_frac_bits};
  const FixedFormat force_fmt{32, fmt.force_frac_bits};
  std::int64_t total_raw = 0;  // 64-bit potential accumulator

  std::vector<double> wx(6), wy(6), wz(6), dx(6), dy(6), dz(6);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 u = hadamard_div(box.wrap(positions[i]), h);
    const long mx0 = lru_spline_weights(u.x, wx, dx, fmt);
    const long my0 = lru_spline_weights(u.y, wy, dy, fmt);
    const long mz0 = lru_spline_weights(u.z, wz, dz, fmt);
    double phi = 0.0;
    Vec3 grad{};
    for (int kz = 0; kz < p; ++kz) {
      const std::size_t iz = Grid3d::wrap(mz0 + kz, dims.nz);
      for (int ky = 0; ky < p; ++ky) {
        const std::size_t iy = Grid3d::wrap(my0 + ky, dims.ny);
        double line_v = 0.0, line_d = 0.0;
        for (int kx = 0; kx < p; ++kx) {
          const std::size_t ix = Grid3d::wrap(mx0 + kx, dims.nx);
          const double pm =
              quantize_value(potential.at(ix, iy, iz), grid_fmt);
          line_v += pm * wx[static_cast<std::size_t>(kx)];
          line_d += pm * dx[static_cast<std::size_t>(kx)];
        }
        phi += line_v * wy[static_cast<std::size_t>(ky)] *
               wz[static_cast<std::size_t>(kz)];
        grad.x += line_d * wy[static_cast<std::size_t>(ky)] *
                  wz[static_cast<std::size_t>(kz)];
        grad.y += line_v * dy[static_cast<std::size_t>(ky)] *
                  wz[static_cast<std::size_t>(kz)];
        grad.z += line_v * wy[static_cast<std::size_t>(ky)] *
                  dz[static_cast<std::size_t>(kz)];
      }
    }
    // Per-atom potential at 32-bit fixed point; total at 64 bits.
    std::int64_t phi_raw = quantize(phi, grid_fmt);
    if (faults != nullptr && faults->sdc_enabled()) {
      phi_raw = faults->sdc_fixed(phi_raw, 32, SdcSite::kLruAccumulator,
                                  std::ldexp(1.0, -fmt.potential_frac_bits));
    }
    total_raw += quantize(charges[i] * dequantize(phi_raw, grid_fmt), grid_fmt);
    // Force accumulation at 32-bit fixed point with a tunable binary point.
    const Vec3 f{-charges[i] * grad.x / h.x, -charges[i] * grad.y / h.y,
                 -charges[i] * grad.z / h.z};
    forces[i] += {quantize_value(f.x, force_fmt), quantize_value(f.y, force_fmt),
                  quantize_value(f.z, force_fmt)};
  }
  return dequantize(total_raw, grid_fmt);
}

}  // namespace tme::hw
