// 3D-torus node topology of the MDGRAPE-4A system interconnect
// (8 x 8 x 8 = 512 SoCs, paper Sec. II).
#pragma once

#include <array>
#include <cstddef>

namespace tme::hw {

struct NodeCoord {
  std::size_t x = 0, y = 0, z = 0;
  bool operator==(const NodeCoord&) const = default;
};

class TorusTopology {
 public:
  TorusTopology(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t node_count() const { return nx_ * ny_ * nz_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }

  std::size_t index(const NodeCoord& c) const {
    return (c.z * ny_ + c.y) * nx_ + c.x;
  }
  NodeCoord coord(std::size_t index) const;

  // Minimal hop distance along one axis under wraparound.
  std::size_t axis_hops(std::size_t a, std::size_t b, std::size_t extent) const;

  // Manhattan distance on the torus (dimension-ordered routing).
  std::size_t hops(const NodeCoord& a, const NodeCoord& b) const;

  // The six neighbours of a node (+-x, +-y, +-z).
  std::array<NodeCoord, 6> neighbours(const NodeCoord& c) const;

 private:
  std::size_t nx_, ny_, nz_;
};

}  // namespace tme::hw
