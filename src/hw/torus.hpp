// 3D-torus node topology of the MDGRAPE-4A system interconnect
// (8 x 8 x 8 = 512 SoCs, paper Sec. II).
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

namespace tme::hw {

class FaultInjector;

// Sentinel hop count for a route that no longer exists on a faulted machine.
inline constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

struct NodeCoord {
  std::size_t x = 0, y = 0, z = 0;
  bool operator==(const NodeCoord&) const = default;
};

// Connectivity summary of a faulted machine: which nodes are alive, dead, or
// alive-but-cut-off from the surviving partition containing `root` (the
// lowest-indexed alive node).
struct PartitionReport {
  std::size_t root = kUnreachable;          // kUnreachable if every node is dead
  std::size_t alive = 0;                    // reachable alive nodes (incl. root)
  std::vector<std::size_t> dead;            // killed outright
  std::vector<std::size_t> unreachable;     // alive but cut off from root
};

class TorusTopology {
 public:
  TorusTopology(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t node_count() const { return nx_ * ny_ * nz_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }

  std::size_t index(const NodeCoord& c) const {
    return (c.z * ny_ + c.y) * nx_ + c.x;
  }
  NodeCoord coord(std::size_t index) const;

  // Minimal hop distance along one axis under wraparound.
  std::size_t axis_hops(std::size_t a, std::size_t b, std::size_t extent) const;

  // Manhattan distance on the torus (dimension-ordered routing).
  std::size_t hops(const NodeCoord& a, const NodeCoord& b) const;

  // The six neighbours of a node (+-x, +-y, +-z).
  std::array<NodeCoord, 6> neighbours(const NodeCoord& c) const;

  // The healthy machine's deterministic dimension-ordered route (x, then y,
  // then z, shorter wrap direction, ties broken toward +): the node sequence
  // a, ..., b inclusive.  Its length is hops(a, b) + 1.
  std::vector<NodeCoord> route(const NodeCoord& a, const NodeCoord& b) const;

  // Shortest surviving route between two nodes when links/nodes are dead:
  // BFS over alive neighbours, skipping killed links.  Returns kUnreachable
  // when either endpoint is dead or no route survives; equals hops() on a
  // fault-free machine.  Detours longer than the Manhattan distance bump the
  // hw/fault/reroutes counter.
  std::size_t hops_avoiding(const NodeCoord& a, const NodeCoord& b,
                            const FaultInjector& faults) const;

  // BFS from the lowest-indexed alive node, classifying every node as
  // reachable / dead / cut off — the "unreachable partition" check a
  // degraded production run must pass before it is allowed to proceed.
  PartitionReport partition_report(const FaultInjector& faults) const;

 private:
  std::size_t nx_, ny_, nz_;
};

}  // namespace tme::hw
