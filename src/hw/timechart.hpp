// ASCII rendering of a step schedule as a Fig. 9-style time chart.
#pragma once

#include <string>
#include <vector>

#include "hw/event_sim.hpp"

namespace tme::hw {

// One row per lane, bars scaled to `width` characters over the makespan.
std::string render_timechart(const std::vector<ScheduledTask>& schedule,
                             int width = 100);

// Per-task listing with start/end in microseconds.
std::string render_task_table(const std::vector<ScheduledTask>& schedule);

}  // namespace tme::hw
