#include "hw/gcu_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace tme::hw {

namespace {

// Grid-point evaluations for one axis pass with the given kernel reach.
double axis_evals(std::size_t extent_along, std::size_t perpendicular_lines,
                  std::size_t level_extent, int reach_per_side, int terms) {
  // Input span along the axis: the local slab plus the kernel reach on both
  // sides, folded to at most the level's periodic extent.
  const std::size_t span = std::min(
      extent_along + 2 * static_cast<std::size_t>(reach_per_side), level_extent);
  const double rows_in =
      static_cast<double>(perpendicular_lines) * static_cast<double>(span) / 4.0;
  const double outputs_per_row = 2.0 * reach_per_side + 4.0;
  return rows_in * outputs_per_row * static_cast<double>(terms);
}

void check(const GcuParams& params) {
  if (params.clock_hz <= 0.0 || params.points_per_cycle <= 0.0 ||
      params.waiting_factor < 1.0) {
    throw std::invalid_argument("GcuParams: bad parameters");
  }
}

}  // namespace

double gcu_convolution_time(const GcuParams& params, const GcuLevelGeometry& geom,
                            int grid_cutoff, int num_gaussians) {
  check(params);
  if (grid_cutoff < 1 || num_gaussians < 1) {
    throw std::invalid_argument("gcu_convolution_time: bad kernel description");
  }
  const double rate = params.clock_hz * params.points_per_cycle;
  double total = 0.0;
  const std::size_t lines_x = geom.local_y * geom.local_z;
  const std::size_t lines_y = geom.local_x * geom.local_z;
  const std::size_t lines_z = geom.local_x * geom.local_y;
  const double evals = axis_evals(geom.local_x, lines_x, geom.level_x, grid_cutoff,
                                  num_gaussians) +
                       axis_evals(geom.local_y, lines_y, geom.level_y, grid_cutoff,
                                  num_gaussians) +
                       axis_evals(geom.local_z, lines_z, geom.level_z, grid_cutoff,
                                  num_gaussians);
  total = evals / rate * params.waiting_factor +
          3.0 * params.conv_phase_overhead_s;
  return total;
}

double gcu_transfer_time(const GcuParams& params, const GcuLevelGeometry& geom,
                         int spline_order) {
  check(params);
  if (spline_order < 2) throw std::invalid_argument("gcu_transfer_time: bad order");
  const double rate = params.clock_hz * params.points_per_cycle;
  const int reach = spline_order / 2;  // J has p + 1 taps, p/2 per side
  const std::size_t lines_x = geom.local_y * geom.local_z;
  const std::size_t lines_y = geom.local_x * geom.local_z;
  const std::size_t lines_z = geom.local_x * geom.local_y;
  const double evals =
      axis_evals(geom.local_x, lines_x, geom.level_x, reach, 1) +
      axis_evals(geom.local_y, lines_y, geom.level_y, reach, 1) +
      axis_evals(geom.local_z, lines_z, geom.level_z, reach, 1);
  return evals / rate * params.waiting_factor + params.transfer_phase_overhead_s;
}

}  // namespace tme::hw
