#include "hw/event_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace tme::hw {

TaskId EventSimulator::add_task(TaskSpec spec) {
  const TaskId id = tasks_.size();
  for (const TaskId dep : spec.deps) {
    if (dep >= id) throw std::invalid_argument("EventSimulator: forward dependency");
  }
  if (spec.duration < 0.0) throw std::invalid_argument("EventSimulator: negative duration");
  tasks_.push_back(std::move(spec));
  return id;
}

std::vector<ScheduledTask> EventSimulator::run() {
  const std::size_t n = tasks_.size();
  std::vector<ScheduledTask> schedule(n);
  std::vector<bool> done(n, false);
  std::map<int, double> resource_free;  // resource id -> time it frees up

  // List scheduling: repeatedly pick the ready task with the earliest
  // possible start time (dependency-ready time, then resource availability).
  std::size_t completed = 0;
  while (completed < n) {
    TaskId best = n;
    double best_start = std::numeric_limits<double>::infinity();
    double best_ready = 0.0;
    for (TaskId t = 0; t < n; ++t) {
      if (done[t]) continue;
      bool ready = true;
      double ready_time = 0.0;
      for (const TaskId dep : tasks_[t].deps) {
        if (!done[dep]) {
          ready = false;
          break;
        }
        ready_time = std::max(ready_time, schedule[dep].end);
      }
      if (!ready) continue;
      double start = ready_time;
      const int res = tasks_[t].resource;
      if (res >= 0) {
        const auto it = resource_free.find(res);
        if (it != resource_free.end()) start = std::max(start, it->second);
      }
      if (start < best_start ||
          (start == best_start && ready_time < best_ready)) {
        best = t;
        best_start = start;
        best_ready = ready_time;
      }
    }
    if (best == n) throw std::logic_error("EventSimulator: dependency cycle");
    schedule[best].spec = tasks_[best];
    schedule[best].start = best_start;
    schedule[best].end = best_start + tasks_[best].duration;
    if (tasks_[best].resource >= 0) {
      resource_free[tasks_[best].resource] = schedule[best].end;
    }
    done[best] = true;
    ++completed;
    makespan_ = std::max(makespan_, schedule[best].end);
  }
  // Per-unit busy time: the same numbers the timechart lanes render, exposed
  // through the metrics registry for machine-readable export.
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("hw/event_sim/runs").add(1);
    reg.counter("hw/event_sim/tasks").add(n);
    for (const ScheduledTask& t : schedule) {
      reg.timer_add("hw/unit/" + t.spec.lane, t.spec.duration);
    }
    reg.gauge_set("hw/event_sim/makespan_s", makespan_);
  }
  return schedule;
}

}  // namespace tme::hw
