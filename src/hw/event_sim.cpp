#include "hw/event_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace tme::hw {

TaskId EventSimulator::add_task(TaskSpec spec) {
  const TaskId id = tasks_.size();
  for (const TaskId dep : spec.deps) {
    if (dep >= id) throw std::invalid_argument("EventSimulator: forward dependency");
  }
  if (spec.duration < 0.0) throw std::invalid_argument("EventSimulator: negative duration");
  if (spec.failures < 0) throw std::invalid_argument("EventSimulator: negative failures");
  if (spec.retry_penalty < 0.0) {
    throw std::invalid_argument("EventSimulator: negative retry penalty");
  }
  tasks_.push_back(std::move(spec));
  return id;
}

void EventSimulator::set_retry_limit(int limit) {
  if (limit < 0) throw std::invalid_argument("EventSimulator: negative retry limit");
  retry_limit_ = limit;
}

void EventSimulator::set_heartbeat(
    std::function<void(std::size_t, std::size_t, double)> cb) {
  heartbeat_ = std::move(cb);
}

void EventSimulator::set_stall_horizon(double seconds) {
  if (!(seconds > 0.0)) {
    throw std::invalid_argument("EventSimulator: stall horizon must be > 0");
  }
  stall_horizon_ = seconds;
}

std::vector<ScheduledTask> EventSimulator::run() {
  const std::size_t n = tasks_.size();
  std::vector<ScheduledTask> schedule(n);
  std::vector<bool> done(n, false);
  std::map<int, double> resource_free;  // resource id -> time it frees up
  total_retries_ = 0;
  failed_tasks_ = 0;
  stalled_ = false;

  // List scheduling: repeatedly pick the ready task with the earliest
  // possible start time (dependency-ready time, then resource availability).
  std::size_t completed = 0;
  while (completed < n) {
    TaskId best = n;
    double best_start = std::numeric_limits<double>::infinity();
    double best_ready = 0.0;
    for (TaskId t = 0; t < n; ++t) {
      if (done[t]) continue;
      bool ready = true;
      double ready_time = 0.0;
      for (const TaskId dep : tasks_[t].deps) {
        if (!done[dep]) {
          ready = false;
          break;
        }
        ready_time = std::max(ready_time, schedule[dep].end);
      }
      if (!ready) continue;
      double start = ready_time;
      const int res = tasks_[t].resource;
      if (res >= 0) {
        const auto it = resource_free.find(res);
        if (it != resource_free.end()) start = std::max(start, it->second);
      }
      if (start < best_start ||
          (start == best_start && ready_time < best_ready)) {
        best = t;
        best_start = start;
        best_ready = ready_time;
      }
    }
    if (best == n) throw std::logic_error("EventSimulator: dependency cycle");
    if (best_start > stall_horizon_) {
      // The schedule ran away (e.g. a retry storm serialised on one
      // resource): stop with a diagnostic instead of simulating forever.
      log_error("EventSimulator: stall horizon ", stall_horizon_,
                " s exceeded with ", n - completed,
                " tasks unscheduled; first blocked task '", tasks_[best].name,
                "' would start at ", best_start, " s");
      for (TaskId t = 0; t < n; ++t) {
        if (done[t]) continue;
        schedule[t].spec = tasks_[t];
        schedule[t].completed = false;
        schedule[t].attempts = 0;
        ++failed_tasks_;
      }
      stalled_ = true;
      TME_COUNTER_ADD("hw/event_sim/stalls", 1);
      break;
    }
    // Bounded retry: replay the duration for every injected failure up to the
    // limit, then give up (the final attempt's result is what dependents get).
    const int failures = tasks_[best].failures;
    const int replays = std::min(failures, retry_limit_ + 1);
    const bool gave_up = failures > retry_limit_;
    const double effective =
        tasks_[best].duration * static_cast<double>(replays + (gave_up ? 0 : 1)) +
        tasks_[best].retry_penalty * static_cast<double>(replays);
    schedule[best].spec = tasks_[best];
    schedule[best].start = best_start;
    schedule[best].end = best_start + effective;
    schedule[best].attempts = replays + (gave_up ? 0 : 1);
    schedule[best].completed = !gave_up;
    total_retries_ += static_cast<std::size_t>(schedule[best].attempts - 1);
    if (gave_up) ++failed_tasks_;
    if (tasks_[best].resource >= 0) {
      resource_free[tasks_[best].resource] = schedule[best].end;
    }
    done[best] = true;
    ++completed;
    makespan_ = std::max(makespan_, schedule[best].end);
    if (heartbeat_) heartbeat_(completed, n, makespan_);
  }
  // Per-unit busy time: the same numbers the timechart lanes render, exposed
  // through the metrics registry for machine-readable export.
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("hw/event_sim/runs").add(1);
    reg.counter("hw/event_sim/tasks").add(n);
    reg.counter("hw/event_sim/task_retries").add(total_retries_);
    reg.counter("hw/event_sim/tasks_given_up").add(failed_tasks_);
    for (const ScheduledTask& t : schedule) {
      reg.timer_add("hw/unit/" + t.spec.lane, t.spec.duration);
    }
    reg.gauge_set("hw/event_sim/makespan_s", makespan_);
  }
  return schedule;
}

}  // namespace tme::hw
