#include "hw/gcu_functional.hpp"

#include <stdexcept>

namespace tme::hw {

std::vector<GcuBlock> blocks_of(const Grid3d& grid) {
  const GridDims& d = grid.dims();
  if (d.nx % 4 != 0 || d.ny % 4 != 0 || d.nz % 4 != 0) {
    throw std::invalid_argument("blocks_of: grid extents must be multiples of 4");
  }
  std::vector<GcuBlock> blocks;
  blocks.reserve(d.total() / 64);
  for (std::size_t bz = 0; bz < d.nz; bz += 4) {
    for (std::size_t by = 0; by < d.ny; by += 4) {
      for (std::size_t bx = 0; bx < d.nx; bx += 4) {
        GcuBlock blk;
        blk.origin = {bx, by, bz};
        for (std::size_t iz = 0; iz < 4; ++iz) {
          for (std::size_t iy = 0; iy < 4; ++iy) {
            for (std::size_t ix = 0; ix < 4; ++ix) {
              blk.values[(iz * 4 + iy) * 4 + ix] =
                  grid.at(bx + ix, by + iy, bz + iz);
            }
          }
        }
        blocks.push_back(blk);
      }
    }
  }
  return blocks;
}

GcuFunctionalUnit::GcuFunctionalUnit(std::array<std::size_t, 3> origin,
                                     GridDims local, GridDims level)
    : origin_(origin), local_(local), level_(level), memory_(local) {
  if (local.total() == 0) throw std::invalid_argument("GcuFunctionalUnit: empty");
}

std::size_t GcuFunctionalUnit::process_block(const GcuBlock& block,
                                             const Kernel1d& kernel, int axis,
                                             FaultInjector* faults) {
  const int gc = kernel.cutoff;
  const std::size_t level_axis =
      axis == 0 ? level_.nx : (axis == 1 ? level_.ny : level_.nz);
  if (static_cast<std::size_t>(2 * gc + 4) > level_axis) {
    // The hardware never wraps a kernel over the full period; the library
    // path (core/grid_kernel) handles that regime instead.
    throw std::invalid_argument(
        "GcuFunctionalUnit: kernel reach exceeds the level period");
  }

  std::size_t evals = 0;
  // Iterate the 16 rows of the block along the convolution axis (Eq. 18):
  // each row holds h_{m+i}, i = 0..3.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      // Perpendicular coordinates of this row (global).
      std::size_t gx = 0, gy = 0, gz = 0;
      switch (axis) {
        case 0: gy = block.origin[1] + a; gz = block.origin[2] + b; break;
        case 1: gx = block.origin[0] + a; gz = block.origin[2] + b; break;
        default: gx = block.origin[0] + a; gy = block.origin[1] + b; break;
      }
      const long m = static_cast<long>(block.origin[static_cast<std::size_t>(axis)]);
      // Outputs n in [m - gc, m + 3 + gc] along the axis.
      for (long n = m - gc; n <= m + 3 + gc; ++n) {
        const std::size_t wrapped = Grid3d::wrap(n, level_axis);
        // Ownership test in global coordinates.
        std::size_t ox = gx, oy = gy, oz = gz;
        switch (axis) {
          case 0: ox = wrapped; break;
          case 1: oy = wrapped; break;
          default: oz = wrapped; break;
        }
        if (ox < origin_[0] || ox >= origin_[0] + local_.nx) continue;
        if (oy < origin_[1] || oy >= origin_[1] + local_.ny) continue;
        if (oz < origin_[2] || oz >= origin_[2] + local_.nz) continue;
        // Eq. 18: g_n += sum_i h_{m+i} K_{n - m - i}.
        double acc = 0.0;
        for (int i = 0; i < 4; ++i) {
          const long tap_index = n - m - i;
          if (tap_index < -gc || tap_index > gc) continue;
          double h;
          switch (axis) {
            case 0: h = block.at(static_cast<std::size_t>(i), a, b); break;
            case 1: h = block.at(a, static_cast<std::size_t>(i), b); break;
            default: h = block.at(a, b, static_cast<std::size_t>(i)); break;
          }
          acc += h * kernel.tap(static_cast<int>(tap_index));
        }
        if (faults != nullptr && faults->sdc_enabled()) {
          acc = faults->sdc_double(acc, SdcSite::kGcuAccumulator);
        }
        memory_.at(ox - origin_[0], oy - origin_[1], oz - origin_[2]) += acc;
        ++evals;
      }
    }
  }
  return evals;
}

Grid3d gcu_functional_axis_pass(const Grid3d& in, const Kernel1d& kernel,
                                int axis, GridDims local, std::size_t* evals,
                                FaultInjector* faults) {
  const GridDims& level = in.dims();
  if (level.nx % local.nx != 0 || level.ny % local.ny != 0 ||
      level.nz % local.nz != 0) {
    throw std::invalid_argument("gcu_functional_axis_pass: local must tile level");
  }
  // Build one unit per tile.
  std::vector<GcuFunctionalUnit> units;
  for (std::size_t oz = 0; oz < level.nz; oz += local.nz) {
    for (std::size_t oy = 0; oy < level.ny; oy += local.ny) {
      for (std::size_t ox = 0; ox < level.nx; ox += local.nx) {
        units.emplace_back(std::array<std::size_t, 3>{ox, oy, oz}, local, level);
      }
    }
  }
  // Stream every block through every unit (the network delivers only the
  // in-range ones on the machine; out-of-range blocks contribute zero evals
  // here, so the accounting is identical).
  std::size_t total_evals = 0;
  const std::vector<GcuBlock> blocks = blocks_of(in);
  for (GcuFunctionalUnit& unit : units) {
    for (const GcuBlock& blk : blocks) {
      total_evals += unit.process_block(blk, kernel, axis, faults);
    }
  }
  if (evals != nullptr) *evals = total_evals;

  // Assemble.
  Grid3d out(level);
  std::size_t u = 0;
  for (std::size_t oz = 0; oz < level.nz; oz += local.nz) {
    for (std::size_t oy = 0; oy < level.ny; oy += local.ny) {
      for (std::size_t ox = 0; ox < level.nx; ox += local.nx) {
        const Grid3d& mem = units[u++].memory();
        for (std::size_t lz = 0; lz < local.nz; ++lz) {
          for (std::size_t ly = 0; ly < local.ny; ++ly) {
            for (std::size_t lx = 0; lx < local.nx; ++lx) {
              out.at(ox + lx, oy + ly, oz + lz) = mem.at(lx, ly, lz);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace tme::hw
