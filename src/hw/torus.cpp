#include "hw/torus.hpp"

#include <algorithm>
#include <stdexcept>

namespace tme::hw {

TorusTopology::TorusTopology(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("TorusTopology: extents must be positive");
  }
}

NodeCoord TorusTopology::coord(std::size_t index) const {
  if (index >= node_count()) throw std::out_of_range("TorusTopology::coord");
  return {index % nx_, (index / nx_) % ny_, index / (nx_ * ny_)};
}

std::size_t TorusTopology::axis_hops(std::size_t a, std::size_t b,
                                     std::size_t extent) const {
  const std::size_t d = a > b ? a - b : b - a;
  return std::min(d, extent - d);
}

std::size_t TorusTopology::hops(const NodeCoord& a, const NodeCoord& b) const {
  return axis_hops(a.x, b.x, nx_) + axis_hops(a.y, b.y, ny_) +
         axis_hops(a.z, b.z, nz_);
}

std::array<NodeCoord, 6> TorusTopology::neighbours(const NodeCoord& c) const {
  auto wrap = [](std::size_t v, long d, std::size_t n) {
    return static_cast<std::size_t>(
        (static_cast<long>(v) + d + static_cast<long>(n)) % static_cast<long>(n));
  };
  return {NodeCoord{wrap(c.x, 1, nx_), c.y, c.z}, NodeCoord{wrap(c.x, -1, nx_), c.y, c.z},
          NodeCoord{c.x, wrap(c.y, 1, ny_), c.z}, NodeCoord{c.x, wrap(c.y, -1, ny_), c.z},
          NodeCoord{c.x, c.y, wrap(c.z, 1, nz_)}, NodeCoord{c.x, c.y, wrap(c.z, -1, nz_)}};
}

}  // namespace tme::hw
