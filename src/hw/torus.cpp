#include "hw/torus.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "hw/fault.hpp"
#include "obs/metrics.hpp"

namespace tme::hw {

TorusTopology::TorusTopology(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("TorusTopology: extents must be positive, got " +
                                std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                                std::to_string(nz));
  }
}

NodeCoord TorusTopology::coord(std::size_t index) const {
  if (index >= node_count()) {
    throw std::out_of_range("TorusTopology::coord: index " + std::to_string(index) +
                            " >= node count " + std::to_string(node_count()));
  }
  return {index % nx_, (index / nx_) % ny_, index / (nx_ * ny_)};
}

std::size_t TorusTopology::axis_hops(std::size_t a, std::size_t b,
                                     std::size_t extent) const {
  const std::size_t d = a > b ? a - b : b - a;
  return std::min(d, extent - d);
}

std::size_t TorusTopology::hops(const NodeCoord& a, const NodeCoord& b) const {
  return axis_hops(a.x, b.x, nx_) + axis_hops(a.y, b.y, ny_) +
         axis_hops(a.z, b.z, nz_);
}

std::array<NodeCoord, 6> TorusTopology::neighbours(const NodeCoord& c) const {
  auto wrap = [](std::size_t v, long d, std::size_t n) {
    return static_cast<std::size_t>(
        (static_cast<long>(v) + d + static_cast<long>(n)) % static_cast<long>(n));
  };
  return {NodeCoord{wrap(c.x, 1, nx_), c.y, c.z}, NodeCoord{wrap(c.x, -1, nx_), c.y, c.z},
          NodeCoord{c.x, wrap(c.y, 1, ny_), c.z}, NodeCoord{c.x, wrap(c.y, -1, ny_), c.z},
          NodeCoord{c.x, c.y, wrap(c.z, 1, nz_)}, NodeCoord{c.x, c.y, wrap(c.z, -1, nz_)}};
}

std::vector<NodeCoord> TorusTopology::route(const NodeCoord& a,
                                            const NodeCoord& b) const {
  // Step one axis coordinate toward its target along the shorter wrap
  // direction (ties toward +), matching the hardware's dimension-ordered
  // router.
  auto step = [](std::size_t v, std::size_t target, std::size_t extent) {
    const std::size_t fwd = (target + extent - v) % extent;   // hops going +
    const std::size_t bwd = (v + extent - target) % extent;   // hops going -
    const long d = fwd <= bwd ? 1 : -1;
    return static_cast<std::size_t>(
        (static_cast<long>(v) + d + static_cast<long>(extent)) %
        static_cast<long>(extent));
  };
  std::vector<NodeCoord> path;
  path.reserve(hops(a, b) + 1);
  NodeCoord cur = a;
  path.push_back(cur);
  while (cur.x != b.x) path.push_back(cur = {step(cur.x, b.x, nx_), cur.y, cur.z});
  while (cur.y != b.y) path.push_back(cur = {cur.x, step(cur.y, b.y, ny_), cur.z});
  while (cur.z != b.z) path.push_back(cur = {cur.x, cur.y, step(cur.z, b.z, nz_)});
  return path;
}

std::size_t TorusTopology::hops_avoiding(const NodeCoord& a, const NodeCoord& b,
                                         const FaultInjector& faults) const {
  const std::size_t src = index(a);
  const std::size_t dst = index(b);
  if (faults.node_dead(src) || faults.node_dead(dst)) return kUnreachable;
  if (src == dst) return 0;
  if (!faults.has_structural_faults()) return hops(a, b);

  std::vector<std::size_t> dist(node_count(), kUnreachable);
  dist[src] = 0;
  std::deque<std::size_t> frontier{src};
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    if (cur == dst) break;
    for (const NodeCoord& nb : neighbours(coord(cur))) {
      const std::size_t ni = index(nb);
      if (dist[ni] != kUnreachable) continue;
      if (faults.node_dead(ni) || faults.link_dead(cur, ni)) continue;
      dist[ni] = dist[cur] + 1;
      frontier.push_back(ni);
    }
  }
  if (dist[dst] != kUnreachable && dist[dst] > hops(a, b)) {
    TME_COUNTER_ADD("hw/fault/reroutes", 1);
  }
  return dist[dst];
}

PartitionReport TorusTopology::partition_report(const FaultInjector& faults) const {
  PartitionReport report;
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.node_dead(i)) {
      report.dead.push_back(i);
    } else if (report.root == kUnreachable) {
      report.root = i;
    }
  }
  if (report.root == kUnreachable) return report;  // the whole machine is dead

  std::vector<char> seen(n, 0);
  seen[report.root] = 1;
  std::deque<std::size_t> frontier{report.root};
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    ++report.alive;
    for (const NodeCoord& nb : neighbours(coord(cur))) {
      const std::size_t ni = index(nb);
      if (seen[ni] != 0 || faults.node_dead(ni) || faults.link_dead(cur, ni)) continue;
      seen[ni] = 1;
      frontier.push_back(ni);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i] == 0 && !faults.node_dead(i)) report.unreachable.push_back(i);
  }
  TME_GAUGE_SET("hw/fault/unreachable_nodes", report.unreachable.size());
  return report;
}

}  // namespace tme::hw
