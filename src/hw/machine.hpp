// MDGRAPE-4A single-step performance model (paper Secs. II, IV, V).
//
// The hardware-accelerated pipeline stages (LRU, GCU, TMENW, torus links)
// are modelled from first principles — workload divided by published
// throughput plus hop latencies — and reproduce the paper's measured
// sub-timings (LRU ~10 us, restriction/prolongation 1.5 us each, level-1
// convolution ~6 us, TMENW round trip < 20 us) without being fitted to
// them.  The two GP-core software phases (integration/SETTLE and bonded
// forces/halo management) use per-item cycle counts *calibrated* to the
// paper's totals (206 us per step, 196 us without long range) — the paper
// itself attributes these phases to poor GP execution efficiency that a
// workload model cannot derive from specifications.
//
// The GCU-exclusivity rule ("GCU operations must be exclusive to other NW
// activities", Sec. V.A) is modelled by suspending the NW-interleaved
// bonded/halo phase while the GCU window runs: exactly the mechanism that
// makes the long-range term cost ~10 us net despite taking ~50 us.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "grid/grid3d.hpp"
#include "hw/event_sim.hpp"
#include "hw/gcu_model.hpp"
#include "hw/link_stats.hpp"
#include "hw/lru_model.hpp"
#include "hw/network_model.hpp"
#include "hw/tmenw_model.hpp"
#include "hw/torus.hpp"

namespace tme::hw {

struct GpParams {
  double clock_hz = 0.6e9;
  int cores = 2;
  // Calibrated per-item cycle counts (see header comment).
  double integrate_cycles_per_atom = 200.0;   // velocity/position + SETTLE share
  double halo_cycles_per_atom = 800.0;        // cell/halo management per step
  double bonded_cycles_per_term = 1000.0;     // bonded term incl. NW transfers

  double cycles_per_second() const { return clock_hz * cores; }
};

struct PipelineParams {
  double clock_hz = 0.8e9;
  int pipelines = 64;
  double efficiency = 0.35;  // pipeline fill, cell-pair granularity
};

struct MachineParams {
  std::size_t nodes_x = 8, nodes_y = 8, nodes_z = 8;
  GpParams gp;
  PipelineParams pp;
  LruParams lru;
  GcuParams gcu;
  NetworkParams nw;
  TmenwParams tmenw;

  std::size_t node_count() const { return nodes_x * nodes_y * nodes_z; }
};

// One MD step's workload (defaults = the paper's Fig. 9 system).
struct StepConfig {
  std::size_t atoms = 80540;
  std::size_t bonded_terms = 19400;   // ~2.5 per protein atom (7,775 atoms)
  double box_x = 9.7, box_y = 8.3, box_z = 10.6;  // nm
  double r_cut = 1.2;                 // nm
  GridDims grid{32, 32, 32};
  int levels = 1;                     // L
  int grid_cutoff = 8;                // g_c
  int num_gaussians = 4;              // M
  int spline_order = 6;
  bool long_range = true;
  double timestep_fs = 2.5;
  // Fault injection (seeded, deterministic): dead nodes shift their workload
  // onto the survivors and force detour routes; link errors replay NW tasks
  // with bounded retries.  Zero values simulate the perfect machine.
  std::size_t dead_node_count = 0;
  double link_error_rate = 0.0;
  std::uint64_t fault_seed = 2021;
};

struct StepTimings {
  std::vector<ScheduledTask> schedule;
  double step_time = 0.0;          // makespan, seconds
  // Sum of the long-range activities' busy time (the paper's "~50 us total
  // evaluation time"); 0 when the long-range term is disabled.
  double long_range_total = 0.0;
  // Wall-clock CA-start -> BI-end span, including waits on shared resources.
  double long_range_span = 0.0;
  // Component summaries (seconds).
  double lru_ca = 0.0, lru_bi = 0.0;
  double restriction = 0.0, convolution = 0.0, prolongation = 0.0;
  double tmenw = 0.0;
  double gcu_window = 0.0;  // exclusive restriction+convolution+prolongation
  // Degraded-machine accounting (all zero on a fault-free run).
  std::size_t dead_nodes = 0;
  std::size_t task_retries = 0;    // NW attempts replayed after CRC errors
  std::size_t tasks_given_up = 0;  // tasks that exhausted the retry bound
  std::vector<std::size_t> dead_node_list;  // indices of the killed nodes
  // Per-link torus traffic this step (halo, force and sleeve exchanges
  // distributed over each alive node's outgoing links; CRC replays charged
  // as per-link retries).  Always populated; shared_ptr keeps StepTimings
  // cheap to copy.
  std::shared_ptr<LinkTelemetry> links;
};

// Records one simulated step's long-range stage breakdown into the global
// metrics registry under Table 2's phase decomposition:
//   step/charge_assignment, step/ca_sleeve_exchange, step/restriction,
//   step/convolution, step/prolongation, step/top_fft, step/grid_to_lru,
//   step/back_interpolation
// plus a "step" timer holding the long-range busy total (the stage timers
// sum to it exactly), gauges for the makespan and long-range span, and the
// hw/link/* per-link summary gauges (utilizations over the makespan window).
// Call Registry::global().reset() first when a single headline breakdown is
// wanted (the registry otherwise accumulates across simulate_step calls).
void record_step_metrics(const StepTimings& timings,
                         const NetworkParams& nw = {});

// Replays one simulated step into the global tracer (no-op unless tracing
// is active): unit-lane tracks via trace_schedule under "machine step",
// a per-node track for every torus node ("torus nodes" process — halo /
// nonbond / force activity for alive nodes, an instant "dead" marker for
// killed ones), FPGA FFT sub-stages of the TMENW window, and per-link
// counter samples at the makespan.  Simulated seconds map to trace
// microseconds 1:1.
void trace_step(const StepTimings& timings, const MachineParams& machine);

// Estimate of a *software* distributed 3D FFT on the torus (the paper's
// MDGRAPE-4 prototype: "repetition of 1D FFT and transposition on the torus
// network would be hundreds of microseconds") — the alternative the TME was
// designed to avoid.  Six transpose rounds (forward + inverse), each an
// intra-axis all-to-all of the local grid slab, dominated by the per-message
// CGP software cost.
struct SoftwareFftParams {
  double per_message_software_s = 2.0e-6;  // CGP handling per message
  int transpose_rounds = 6;                // 3 axes forward + 3 inverse
};
double software_fft_estimate(const MachineParams& machine, GridDims grid,
                             const SoftwareFftParams& params = {});

class MdgrapeMachine {
 public:
  explicit MdgrapeMachine(MachineParams params = {});

  const MachineParams& params() const { return params_; }

  // Simulates one MD step and returns the schedule + summary numbers.
  StepTimings simulate_step(const StepConfig& config) const;

  // Simulated throughput in us/day of simulated time.
  double performance_us_per_day(const StepConfig& config) const;

 private:
  MachineParams params_;
};

}  // namespace tme::hw
