// Seeded fault injection for the simulated MDGRAPE-4A machine.
//
// Production runs on a 512-SoC torus must survive link errors, dead nodes
// and straggling transfers; this module is the single source of truth for
// which parts of the simulated machine are broken.  Faults come in two
// kinds:
//  - structural: nodes and links killed explicitly (or by a seeded draw),
//    consumed by the fault-aware torus routing and the parallel TME's
//    recovery plan;
//  - stochastic: per-transfer corruption drawn from a seeded Xoshiro stream
//    (probability 1 - (1 - p)^hops for a route of `hops` links), consumed by
//    the network model's CRC-detect/retry path;
//  - silent data corruption (SDC): per-operation bit flips inside the
//    *compute* datapaths — the LRU's fixed-point grid accumulators, the
//    GCU's row accumulators, and the FPGA FFT's single-precision spectrum
//    words.  No CRC covers these; they are the adversary the ABFT invariant
//    layer (core/abft + hw/sdc_guard) exists to catch.
//
// All draws are deterministic for a fixed seed, so a degraded-machine run is
// exactly reproducible — the property the fault-injection soak in CI and the
// golden-trace tests rely on.  The injector is not thread-safe; share one
// per simulated machine, not across concurrent simulations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace tme::hw {

struct FaultConfig {
  std::uint64_t seed = 2021;        // stream for corruption draws + random kills
  double link_error_rate = 0.0;     // per-link per-transfer corruption probability
  int max_retries = 8;              // retransmissions before a transfer is dropped
  double retry_backoff_base_s = 400e-9;  // first backoff; doubles per retry
  double detect_timeout_s = 2e-6;   // receiver CRC window before the NACK
  double sdc_rate = 0.0;            // per-operation compute bit-flip probability

  // --- process-level fault modes (real worker transport drills) -------------
  // These describe misbehaviour of the *actual* coordinator<->worker traffic
  // and processes, not the simulated torus: seeded frame loss and bit flips
  // on the transport (detected by the frame CRC and retransmitted), and one
  // designated worker that crashes (SIGKILL), hangs (socket open, silent) or
  // straggles (fixed per-task delay) after a task count.
  double packet_drop_rate = 0.0;     // coordinator->worker frame loss
  double packet_corrupt_rate = 0.0;  // coordinator->worker frame bit flips
  long kill_worker_rank = -1;        // which worker the process drill targets
  long kill_worker_task = -1;        // crash that worker after N completed tasks
  long hang_worker_task = -1;        // or go silent after N completed tasks
  long worker_delay_ms = 0;          // slow-worker drill: delay every result
};

// Reads TME_FAULT_SEED, TME_FAULT_LINK_ERROR_RATE, TME_FAULT_SDC_RATE and
// the process-level knobs TME_FAULT_PACKET_DROP_RATE,
// TME_FAULT_PACKET_CORRUPT_RATE, TME_FAULT_KILL_WORKER_RANK,
// TME_FAULT_KILL_WORKER_TASK, TME_FAULT_HANG_WORKER_TASK and
// TME_FAULT_WORKER_DELAY_MS from the environment (unset or malformed values
// keep the defaults; malformed values log a warning).
FaultConfig fault_config_from_env();

// Which compute datapath an SDC draw hit.
enum class SdcSite {
  kLruAccumulator,  // 32-bit fixed-point grid-charge accumulation (CA mode)
  kGcuAccumulator,  // GCU row accumulator (Eq. 18 grid-point update)
  kFpgaFft,         // single-precision spectrum word in the CFFT16 engine
};

const char* to_string(SdcSite site);

// One injected compute corruption.  `stage`/`index` are caller-provided
// context (see FaultInjector::set_sdc_context) that the guarded pipeline
// sets per stage so the detection-coverage tests can match every injected
// event against the ABFT violation that caught it.
struct SdcEvent {
  SdcSite site = SdcSite::kLruAccumulator;
  int bit = 0;          // flipped bit index within the corrupted word
  double before = 0.0;  // value in engineering units before the flip
  double after = 0.0;   // value after the flip (may be non-finite for fp words)
  int stage = -1;       // pipeline stage tag (see set_sdc_context)
  int index = -1;       // sub-stage tag (level, term, axis — caller-defined)
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultConfig{}) {}
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  // --- structural faults ----------------------------------------------------
  void kill_node(std::size_t node);
  // Links are undirected; the pair is stored normalised.
  void kill_link(std::size_t a, std::size_t b);
  // Kills `count` distinct nodes drawn from [0, node_count) with the
  // injector's seed (deterministic).  Throws if count > node_count.
  void kill_random_nodes(std::size_t count, std::size_t node_count);

  bool node_dead(std::size_t node) const { return dead_nodes_.count(node) != 0; }
  bool link_dead(std::size_t a, std::size_t b) const;
  const std::set<std::size_t>& dead_nodes() const { return dead_nodes_; }
  std::size_t dead_link_count() const { return dead_links_.size(); }
  bool has_structural_faults() const {
    return !dead_nodes_.empty() || !dead_links_.empty();
  }

  // --- stochastic faults ----------------------------------------------------
  // One Bernoulli draw per transfer attempt over a `hops`-link route.  Counts
  // every corruption it injects (see injected_errors()).
  bool attempt_corrupted(std::size_t hops) const;

  // Total corruptions injected so far — non-zero whenever the retry machinery
  // actually fired, independent of whether metrics are compiled in.
  std::uint64_t injected_errors() const { return injected_errors_; }

  // --- silent data corruption (compute faults) -------------------------------
  // Each call is one per-operation Bernoulli(sdc_rate) draw at the given
  // site.  When the draw fires, one uniformly drawn bit of the operand is
  // flipped and an SdcEvent is recorded; otherwise the operand passes
  // through untouched.  All three share the injector's seeded stream, so a
  // run is reproducible draw-for-draw.
  //
  // sdc_fixed flips one of the low `bits` bits of a raw fixed-point word
  // (`resolution` converts the raw delta to engineering units for the event
  // log).  sdc_double flips a mantissa bit of an IEEE double (the GCU's
  // accumulator register).  sdc_float flips any of the 32 bits of an IEEE
  // float (the FPGA's spectrum words — sign/exponent flips included, as on
  // the real part).
  std::int64_t sdc_fixed(std::int64_t raw, int bits, SdcSite site,
                         double resolution) const;
  double sdc_double(double value, SdcSite site) const;
  float sdc_float(float value, SdcSite site) const;

  bool sdc_enabled() const { return config_.sdc_rate > 0.0 && !sdc_suspended_; }

  // Suspend/resume injection — the guarded pipeline suspends SDC while it
  // recomputes a stage, modelling the transient nature of an upset: the
  // re-executed computation is clean, so the recompute is bitwise identical
  // to a fault-free run by construction.
  void set_sdc_suspended(bool suspended) { sdc_suspended_ = suspended; }
  bool sdc_suspended() const { return sdc_suspended_; }

  // Pipeline-stage context stamped into subsequently recorded events.
  void set_sdc_context(int stage, int index = -1) {
    sdc_stage_ = stage;
    sdc_index_ = index;
  }

  const std::vector<SdcEvent>& sdc_events() const { return sdc_events_; }
  std::uint64_t injected_sdc() const { return sdc_events_.size(); }
  void clear_sdc_events() { sdc_events_.clear(); }

 private:
  FaultConfig config_;
  mutable Rng rng_;
  mutable std::uint64_t injected_errors_ = 0;
  std::set<std::size_t> dead_nodes_;
  std::set<std::pair<std::size_t, std::size_t>> dead_links_;
  bool sdc_suspended_ = false;
  int sdc_stage_ = -1;
  int sdc_index_ = -1;
  mutable std::vector<SdcEvent> sdc_events_;
};

// RAII guard for recompute paths: suspends SDC injection on construction,
// restores the previous state on destruction.
class SdcSuspend {
 public:
  explicit SdcSuspend(FaultInjector* injector) : injector_(injector) {
    if (injector_ != nullptr) {
      was_ = injector_->sdc_suspended();
      injector_->set_sdc_suspended(true);
    }
  }
  ~SdcSuspend() {
    if (injector_ != nullptr) injector_->set_sdc_suspended(was_);
  }
  SdcSuspend(const SdcSuspend&) = delete;
  SdcSuspend& operator=(const SdcSuspend&) = delete;

 private:
  FaultInjector* injector_;
  bool was_ = false;
};

}  // namespace tme::hw
