// Seeded fault injection for the simulated MDGRAPE-4A machine.
//
// Production runs on a 512-SoC torus must survive link errors, dead nodes
// and straggling transfers; this module is the single source of truth for
// which parts of the simulated machine are broken.  Faults come in two
// kinds:
//  - structural: nodes and links killed explicitly (or by a seeded draw),
//    consumed by the fault-aware torus routing and the parallel TME's
//    recovery plan;
//  - stochastic: per-transfer corruption drawn from a seeded Xoshiro stream
//    (probability 1 - (1 - p)^hops for a route of `hops` links), consumed by
//    the network model's CRC-detect/retry path.
//
// All draws are deterministic for a fixed seed, so a degraded-machine run is
// exactly reproducible — the property the fault-injection soak in CI and the
// golden-trace tests rely on.  The injector is not thread-safe; share one
// per simulated machine, not across concurrent simulations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>

#include "util/rng.hpp"

namespace tme::hw {

struct FaultConfig {
  std::uint64_t seed = 2021;        // stream for corruption draws + random kills
  double link_error_rate = 0.0;     // per-link per-transfer corruption probability
  int max_retries = 8;              // retransmissions before a transfer is dropped
  double retry_backoff_base_s = 400e-9;  // first backoff; doubles per retry
  double detect_timeout_s = 2e-6;   // receiver CRC window before the NACK
};

// Reads TME_FAULT_SEED and TME_FAULT_LINK_ERROR_RATE from the environment
// (unset or malformed values keep the defaults; malformed values log a
// warning).
FaultConfig fault_config_from_env();

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultConfig{}) {}
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  // --- structural faults ----------------------------------------------------
  void kill_node(std::size_t node);
  // Links are undirected; the pair is stored normalised.
  void kill_link(std::size_t a, std::size_t b);
  // Kills `count` distinct nodes drawn from [0, node_count) with the
  // injector's seed (deterministic).  Throws if count > node_count.
  void kill_random_nodes(std::size_t count, std::size_t node_count);

  bool node_dead(std::size_t node) const { return dead_nodes_.count(node) != 0; }
  bool link_dead(std::size_t a, std::size_t b) const;
  const std::set<std::size_t>& dead_nodes() const { return dead_nodes_; }
  std::size_t dead_link_count() const { return dead_links_.size(); }
  bool has_structural_faults() const {
    return !dead_nodes_.empty() || !dead_links_.empty();
  }

  // --- stochastic faults ----------------------------------------------------
  // One Bernoulli draw per transfer attempt over a `hops`-link route.  Counts
  // every corruption it injects (see injected_errors()).
  bool attempt_corrupted(std::size_t hops) const;

  // Total corruptions injected so far — non-zero whenever the retry machinery
  // actually fired, independent of whether metrics are compiled in.
  std::uint64_t injected_errors() const { return injected_errors_; }

 private:
  FaultConfig config_;
  mutable Rng rng_;
  mutable std::uint64_t injected_errors_ = 0;
  std::set<std::size_t> dead_nodes_;
  std::set<std::pair<std::size_t, std::size_t>> dead_links_;
};

}  // namespace tme::hw
