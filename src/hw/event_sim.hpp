// Minimal discrete-event scheduler for the single-step MD time chart.
//
// The step is modelled as a DAG of tasks, each with a fixed duration, a set
// of dependencies, and an optional exclusive resource (e.g. the network unit
// while the GCU streams grid blocks — "GCU operations must be exclusive to
// other NW activities", paper Sec. V.A).  The scheduler is a list scheduler:
// a task starts as soon as its dependencies are done and its resource is
// free; earliest-ready wins ties.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace tme::hw {

using TaskId = std::size_t;

struct TaskSpec {
  std::string name;
  std::string lane;      // display row in the time chart ("GP", "PP", ...)
  double duration = 0.0; // seconds
  std::vector<TaskId> deps;
  int resource = -1;     // exclusive resource id, -1 = none
  // Fault injection: attempts that fail before the task succeeds.  Each
  // failed attempt replays the full duration plus `retry_penalty` (fault
  // detection + re-dispatch) while holding the task's resource.  Failures
  // beyond the simulator's retry limit mark the task as given-up.
  int failures = 0;
  double retry_penalty = 0.0;  // seconds per failed attempt
};

struct ScheduledTask {
  TaskSpec spec;
  double start = 0.0;
  double end = 0.0;
  int attempts = 1;        // 1 + replayed failures (bounded by the retry limit)
  bool completed = true;   // false when failures exceeded the retry limit
};

class EventSimulator {
 public:
  // Adds a task and returns its id.  Dependencies must already exist.
  TaskId add_task(TaskSpec spec);

  // Retransmission bound: a task whose injected `failures` exceed this limit
  // stops retrying and is marked completed = false (dependents still run —
  // the machine degrades rather than hangs).
  void set_retry_limit(int limit);
  int retry_limit() const { return retry_limit_; }

  // Progress heartbeat: called after every scheduled task with
  // (tasks_completed, tasks_total, simulated_time_so_far).  The guarded run
  // drivers use it to pet their wall-clock watchdog, so a simulation that
  // stops scheduling is indistinguishable from a hang and times out.
  void set_heartbeat(std::function<void(std::size_t, std::size_t, double)> cb);

  // Simulated-time horizon: a task whose start time would exceed this is
  // never scheduled; run() stops, logs a diagnostic listing the blocked
  // tasks, marks the remainder completed = false and sets stalled().  Guards
  // against runaway retry storms inflating the schedule without bound.
  // Default: no horizon.
  void set_stall_horizon(double seconds);

  // True when the last run() hit the stall horizon before completing.
  bool stalled() const { return stalled_; }

  // Runs the list scheduler; returns the schedule sorted by task id.
  std::vector<ScheduledTask> run();

  // Makespan of the last run().
  double makespan() const { return makespan_; }

  // Retries replayed / tasks given up during the last run().
  std::size_t total_retries() const { return total_retries_; }
  std::size_t failed_tasks() const { return failed_tasks_; }

 private:
  std::vector<TaskSpec> tasks_;
  double makespan_ = 0.0;
  int retry_limit_ = 3;
  std::size_t total_retries_ = 0;
  std::size_t failed_tasks_ = 0;
  std::function<void(std::size_t, std::size_t, double)> heartbeat_;
  double stall_horizon_ = std::numeric_limits<double>::infinity();
  bool stalled_ = false;
};

}  // namespace tme::hw
