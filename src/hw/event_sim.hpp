// Minimal discrete-event scheduler for the single-step MD time chart.
//
// The step is modelled as a DAG of tasks, each with a fixed duration, a set
// of dependencies, and an optional exclusive resource (e.g. the network unit
// while the GCU streams grid blocks — "GCU operations must be exclusive to
// other NW activities", paper Sec. V.A).  The scheduler is a list scheduler:
// a task starts as soon as its dependencies are done and its resource is
// free; earliest-ready wins ties.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace tme::hw {

using TaskId = std::size_t;

struct TaskSpec {
  std::string name;
  std::string lane;      // display row in the time chart ("GP", "PP", ...)
  double duration = 0.0; // seconds
  std::vector<TaskId> deps;
  int resource = -1;     // exclusive resource id, -1 = none
};

struct ScheduledTask {
  TaskSpec spec;
  double start = 0.0;
  double end = 0.0;
};

class EventSimulator {
 public:
  // Adds a task and returns its id.  Dependencies must already exist.
  TaskId add_task(TaskSpec spec);

  // Runs the list scheduler; returns the schedule sorted by task id.
  std::vector<ScheduledTask> run();

  // Makespan of the last run().
  double makespan() const { return makespan_; }

 private:
  std::vector<TaskSpec> tasks_;
  double makespan_ = 0.0;
};

}  // namespace tme::hw
