#include "hw/track_meta.hpp"

#include "obs/trace.hpp"

namespace tme::hw {

const std::vector<LaneMeta>& lane_metadata() {
  static const std::vector<LaneMeta> kLanes = {
      {"GP", "GP cores (integrate/bonded)", "software"},
      {"PP", "PP nonbond pipelines", "hardware"},
      {"NW", "torus network", "hardware"},
      {"LRU", "LRU charge assign / back interp", "hardware"},
      {"GCU", "GCU grid convolution", "hardware"},
      {"TMENW", "TMENW top-level FFT", "hardware"},
  };
  return kLanes;
}

std::string lane_label(const std::string& lane) {
  for (const LaneMeta& m : lane_metadata()) {
    if (lane == m.lane) return m.label;
  }
  return lane;
}

void trace_schedule(const std::vector<ScheduledTask>& schedule,
                    const std::string& process) {
  if (!obs::tracing_active()) return;
  obs::Tracer& tracer = obs::Tracer::global();
  for (const ScheduledTask& t : schedule) {
    if (t.spec.duration <= 0.0 && t.attempts <= 1 && t.completed) continue;
    const obs::TrackId track = tracer.track(process, lane_label(t.spec.lane));
    const double start_us = t.start * 1e6;
    const double end_us = t.end * 1e6;
    tracer.complete(track, t.spec.name, start_us, end_us - start_us);
    if (t.attempts > 1) {
      // Failed attempts replay the full duration plus the retry penalty from
      // the start of the task window; mark each replay boundary.
      const double attempt_us =
          (end_us - start_us) / static_cast<double>(t.attempts);
      for (int k = 1; k < t.attempts; ++k) {
        tracer.instant(track, "retry", start_us + k * attempt_us,
                       t.spec.name + " attempt " + std::to_string(k + 1));
      }
    }
    if (!t.completed) {
      tracer.instant(track, "gave up", end_us, t.spec.name);
    }
  }
}

}  // namespace tme::hw
