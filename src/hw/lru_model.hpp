// Timing model of the long-range unit (LRU, paper Sec. IV.A).
//
// Two LRUs per chip split the grid along z; each atom costs up to 36 cycles
// in the tensor-multiplier for CA and again for BI (p = 6: six grid planes
// by up to six y-rows).  First principles: with ~157 atoms/node the pair of
// passes lands at the paper's "approximately 10 us".
#pragma once

#include <cstddef>

namespace tme::hw {

struct LruParams {
  double clock_hz = 0.6e9;
  int units_per_chip = 2;
  double cycles_per_atom = 36.0;        // worst-case tensor product/convolution
  double pipeline_fill_cycles = 250.0;  // 12-stage spline pipeline + control
};

// One CA or BI pass over the node's atoms (seconds).  The two LRUs share the
// load imperfectly; `imbalance` > 1 models the z-split imbalance the paper
// mentions ("the number of cycles depended on the z coordinate of an atom").
double lru_pass_time(const LruParams& params, std::size_t atoms_per_node,
                     double imbalance = 1.15);

}  // namespace tme::hw
