// Timing model of the proprietary 3D-torus links (paper Sec. II:
// 7.2 GB/s raw per direction, 200 ns neighbour latency).
//
// Transfers are modelled as cut-through: per-hop latency plus serialisation
// of the payload at the effective bandwidth (raw bandwidth derated by the
// protocol efficiency the paper mentions losing to framing).
#pragma once

#include <cstddef>

namespace tme::hw {

struct NetworkParams {
  double raw_bandwidth_bps = 7.2e9;  // bytes per second, per direction
  double protocol_efficiency = 0.8;  // 64B66B-style framing + headers
  double hop_latency_s = 200e-9;     // measured neighbour latency

  double effective_bandwidth() const { return raw_bandwidth_bps * protocol_efficiency; }
};

// Time to move `bytes` over `hops` consecutive links.
double transfer_time(const NetworkParams& params, std::size_t bytes, std::size_t hops);

}  // namespace tme::hw
