// Timing model of the proprietary 3D-torus links (paper Sec. II:
// 7.2 GB/s raw per direction, 200 ns neighbour latency).
//
// Transfers are modelled as cut-through: per-hop latency plus serialisation
// of the payload at the effective bandwidth (raw bandwidth derated by the
// protocol efficiency the paper mentions losing to framing).
#pragma once

#include <cstddef>

namespace tme::hw {

class FaultInjector;

struct NetworkParams {
  double raw_bandwidth_bps = 7.2e9;  // bytes per second, per direction
  double protocol_efficiency = 0.8;  // 64B66B-style framing + headers
  double hop_latency_s = 200e-9;     // measured neighbour latency

  double effective_bandwidth() const { return raw_bandwidth_bps * protocol_efficiency; }
};

// Time to move `bytes` over `hops` consecutive links.
double transfer_time(const NetworkParams& params, std::size_t bytes, std::size_t hops);

// A transfer's fate on a machine with link errors.
struct TransferOutcome {
  double time_s = 0.0;     // wall clock including retransmissions + backoff
  int attempts = 1;        // 1 = clean first try
  bool delivered = true;   // false once max_retries is exhausted
};

// transfer_time with the link-error/CRC/retry semantics of the real torus:
// every attempt pays the full cut-through time; a corrupted attempt (drawn
// from `faults`, probability 1 - (1 - p)^hops) is detected by the receiver's
// CRC after `detect_timeout_s` and retransmitted after an exponential
// backoff (retry_backoff_base_s * 2^k).  After max_retries corrupted
// attempts the transfer is reported undelivered, with the accrued time —
// the caller decides whether that is fatal.  Draws mutate the injector's
// stream, so outcomes are deterministic for a fixed seed and call order.
TransferOutcome transfer_with_faults(const NetworkParams& params, std::size_t bytes,
                                     std::size_t hops, const FaultInjector& faults);

}  // namespace tme::hw
