// Functional model of the root-FPGA top-level convolution engine
// (paper Sec. IV.C, Fig. 8).
//
// The hardware evaluates the 16^3 SPME convolution with:
//   - CFFT16: a flash radix-4 complex 16-point FFT (160 DSPs each, 4 units),
//   - post/preprocess units that convert complex-FFT results of packed real
//     line pairs into real-FFT spectra (and back for the inverse), with a
//     dedicated unit for wave numbers 0 and 8 = 16/2, which the packing
//     trick cannot separate the ordinary way,
//   - the lattice Green function multiply folded into post/preprocessing,
//   - an "orthogonal memory" providing transposed line access per axis.
//
// Everything here runs in IEEE single precision, as the FPGA does, and is
// validated against the double-precision SPME path.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "hw/fault.hpp"

namespace tme::hw {

// In-place 16-point complex FFT (radix-4, two stages), single precision.
void cfft16(std::complex<float>* data, bool inverse);

// Real-line pair transform through one complex FFT (the hardware's packing
// trick): given two real lines a, b of 16 values, returns their half
// spectra A_k, B_k for k = 0..8 (Hermitian symmetry carries the rest).
// Wave numbers 0 and 8 are the purely-real bins the special "post/preprocess
// 08" unit handles.
struct PackedSpectra {
  std::complex<float> a[9];
  std::complex<float> b[9];
};
PackedSpectra real_pair_forward(const float* line_a, const float* line_b);

// Inverse of the packing trick: reconstruct two real lines from their half
// spectra.
void real_pair_inverse(const PackedSpectra& spectra, float* line_a, float* line_b);

// ABFT energy probe for the engine: Parseval's theorem ties the grid-domain
// energy to the spectrum-domain energy on both sides of the Green multiply,
//   sum_i x_i^2 = (1/N) sum_k |X_k|^2            (forward side)
//   (1/N) sum_k |G_k X_k|^2 = sum_i y_i^2        (inverse side)
// with the half-spectrum Hermitian-unfolded (kx = 1..7 weighted twice).  A
// bit flip in any FFT pass lands between exactly one of the two capture
// pairs, so the mismatched side localises the fault to forward or inverse.
struct FpgaAbftProbe {
  double input_energy = 0.0;    // sum x^2 over the 16^3 input grid
  double forward_energy = 0.0;  // (1/N) sum |X|^2 after the forward passes
  double green_energy = 0.0;    // (1/N) sum |G X|^2 after the Green multiply
  double output_energy = 0.0;   // sum y^2 over the output grid
};

// The full top-level solve on a 16^3 grid: forward 3D FFT, Green multiply,
// inverse 3D FFT, all in single precision.  `green` is the (real) influence
// function in the same layout as ewald/greens_function.  A non-null `faults`
// with sdc_rate > 0 exposes every spectrum word written by the FFT passes to
// a seeded full-word bit flip (SdcSite::kFpgaFft; the Green multiply itself
// is not an injection site).  A non-null `probe` captures the four Parseval
// energies above.
std::vector<float> fpga_top_level_convolve(const std::vector<float>& charges,
                                           const std::vector<double>& green,
                                           FaultInjector* faults = nullptr,
                                           FpgaAbftProbe* probe = nullptr);

// First-principles cycle estimate of the engine (paper: 330 cycles at
// 156.25 MHz = 2.112 us): line FFTs through 4 CFFT16 units, pipelined with
// the post/preprocess stages.
std::size_t fpga_cycle_estimate();

}  // namespace tme::hw
