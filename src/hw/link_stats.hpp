// Per-link telemetry for the 3D-torus interconnect.
//
// Every node owns six directed outgoing links (+x, -x, +y, -y, +z, -z).
// Transfers are charged hop by hop along the deterministic dimension-ordered
// route, so the per-link byte counts decompose the aggregate traffic the
// paper's Sec. III.C model predicts: on a healthy machine the sum of all
// per-link bytes equals sum(bytes x hops) over the logged transfers — the
// conservation invariant the tests assert against par/traffic totals.
//
// Derived quantities (utilization fraction, queue occupancy) are *model
// estimates* over a caller-supplied observation window, not measurements:
// utilization is bytes / (effective bandwidth x window), and the queue
// occupancy is the M/D/1 mean rho^2 / (2 (1 - rho)) — a standard stand-in
// for "how congested would this link be", capped so a saturated link reports
// a large finite value instead of infinity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/network_model.hpp"
#include "hw/torus.hpp"
#include "obs/json.hpp"

namespace tme::hw {

// One directed link's accumulated traffic.
struct LinkStat {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t crc_retries = 0;
};

class LinkTelemetry {
 public:
  // The six outgoing directions, in link-index order.
  static constexpr int kDirections = 6;
  static const char* direction_name(int dir);  // "+x", "-x", ...

  explicit LinkTelemetry(const TorusTopology& topo);

  const TorusTopology& topology() const { return topo_; }
  std::size_t link_count() const { return stats_.size(); }

  // Directed link leaving `node` in direction `dir` (0..5).
  std::size_t link_index(std::size_t node, int dir) const {
    return node * kDirections + static_cast<std::size_t>(dir);
  }
  const LinkStat& link(std::size_t index) const { return stats_[index]; }
  // "(x,y,z)+x" — the source node and outgoing direction.
  std::string link_name(std::size_t index) const;

  // Charges `bytes` to every link along the dimension-ordered route from
  // `from` to `to` (one message per link), and `crc_retries` to the final
  // link (the receiver's CRC is where corruption is detected).  Node-local
  // transfers (from == to) are ignored.
  void record_transfer(std::size_t from, std::size_t to, std::uint64_t bytes,
                       std::uint64_t crc_retries = 0);

  // Direct accounting for callers that know the link (machine-model feeder).
  void record_link(std::size_t node, int dir, std::uint64_t bytes,
                   std::uint64_t messages = 1, std::uint64_t crc_retries = 0);

  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  std::uint64_t total_crc_retries() const;
  // Index of the link with the most bytes (0 if no traffic at all).
  std::size_t busiest_link() const;

  // bytes / (effective bandwidth x window); 0 when window <= 0.
  double utilization(std::size_t index, const NetworkParams& nw,
                     double window_s) const;
  // M/D/1 mean queue occupancy at that utilization, capped at 1e3.
  double queue_occupancy(std::size_t index, const NetworkParams& nw,
                         double window_s) const;

  // Summary gauges into the global metrics registry:
  //   hw/link/total_bytes, hw/link/total_messages, hw/link/crc_retries,
  //   hw/link/active_links, hw/link/max_utilization, hw/link/mean_utilization
  // (utilizations over `window_s`; mean over links that carried traffic).
  void record_gauges(const NetworkParams& nw, double window_s) const;

  // The `link_report` JSON block benches attach next to the metrics export:
  // totals, the busiest link, and every non-idle link with bytes, messages,
  // CRC retries, utilization and queue occupancy.
  obs::JsonValue report_json(const NetworkParams& nw, double window_s) const;

  // One trace counter sample per non-idle link ("torus links" process):
  // series "bytes" and "util_pct" at simulated time `ts_us`.  No-op unless
  // tracing is active.
  void emit_trace_counters(const NetworkParams& nw, double window_s,
                           double ts_us) const;

 private:
  TorusTopology topo_;
  std::vector<LinkStat> stats_;
};

}  // namespace tme::hw
