#!/usr/bin/env python3
"""Schema-check a tme-status-v1 live-introspection snapshot (stdlib only).

Usage:
    check_status.py STATUS.json [--require-fleet] [--require-chaos]
                    [--min-step N]

The snapshot is what worker_drill/chaos_drill write on SIGUSR1 or every N
steps (--status-out / TME_STATUS_OUT).  Checks:
  - top level: schema == "tme-status-v1", numeric step/pid/written_unix_ms
  - metrics section with counters/gauges objects and histogram summaries
    carrying count/p50/p95/p99 with ordered percentiles
  - --require-fleet: a "fleet" section with workers/alive counts and a
    per_worker array where every row has rank, alive, outstanding and the
    clock fields (clock_synced / clock_offset_us / clock_rtt_us)
  - --require-chaos: a "chaos" section with step and oracle counters

Exit code 0 = valid.
"""

import argparse
import json
import numbers
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def is_num(v):
    return isinstance(v, numbers.Number) and not isinstance(v, bool)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("status", help="status JSON file")
    parser.add_argument("--require-fleet", action="store_true",
                        help="fail unless a fleet section is present")
    parser.add_argument("--require-chaos", action="store_true",
                        help="fail unless a chaos section is present")
    parser.add_argument("--min-step", type=int, default=0, metavar="N",
                        help="fail if the snapshot's step is below N")
    args = parser.parse_args()

    with open(args.status) as f:
        snap = json.load(f)

    if not isinstance(snap, dict):
        return fail("top level is not an object")
    if snap.get("schema") != "tme-status-v1":
        return fail(f"schema is {snap.get('schema')!r}, want tme-status-v1")
    for field in ("step", "pid", "written_unix_ms"):
        if not is_num(snap.get(field)):
            return fail(f"missing or non-numeric {field}")
    if snap["step"] < args.min_step:
        return fail(f"step {snap['step']} below required minimum {args.min_step}")

    metrics = snap.get("metrics")
    if not isinstance(metrics, dict):
        return fail("missing metrics section")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            return fail(f"metrics.{section} missing or not an object")
    for name, values in metrics["counters"].items():
        if not is_num(values):
            return fail(f"counter {name} non-numeric")
    for name, values in metrics["gauges"].items():
        if not is_num(values):
            return fail(f"gauge {name} non-numeric")
    for name, hist in metrics["histograms"].items():
        for field in ("count", "p50", "p95", "p99"):
            if not is_num(hist.get(field)):
                return fail(f"histogram {name} missing {field}")
        if not hist["p50"] <= hist["p95"] <= hist["p99"]:
            return fail(f"histogram {name} percentiles out of order")

    n_workers = None
    if args.require_fleet:
        fleet = snap.get("fleet")
        if not isinstance(fleet, dict):
            return fail("missing fleet section")
        for field in ("workers", "alive"):
            if not is_num(fleet.get(field)):
                return fail(f"fleet.{field} missing or non-numeric")
        per_worker = fleet.get("per_worker")
        if not isinstance(per_worker, list) or len(per_worker) != fleet["workers"]:
            return fail("fleet.per_worker missing or wrong length")
        for i, row in enumerate(per_worker):
            for field in ("rank", "pid", "outstanding", "clock_offset_us",
                          "clock_rtt_us"):
                if not is_num(row.get(field)):
                    return fail(f"per_worker[{i}].{field} missing or non-numeric")
            for field in ("alive", "clock_synced"):
                if not isinstance(row.get(field), bool):
                    return fail(f"per_worker[{i}].{field} missing or non-bool")
        n_workers = int(fleet["workers"])

    if args.require_chaos:
        chaos = snap.get("chaos")
        if not isinstance(chaos, dict):
            return fail("missing chaos section")
        for field in ("steps_total", "steps_completed", "events_fired"):
            if not is_num(chaos.get(field)):
                return fail(f"chaos.{field} missing or non-numeric")

    extra = f", {n_workers} workers" if n_workers is not None else ""
    print(
        f"OK: step {snap['step']}, pid {snap['pid']}, "
        f"{len(metrics['counters'])} counters, {len(metrics['gauges'])} gauges, "
        f"{len(metrics['histograms'])} histograms{extra}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
