#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, run every bench, and
# leave the transcripts in test_output.txt / bench_output.txt at the repo
# root (the record EXPERIMENTS.md points at).
#
#   scripts/run_all.sh [--full]   # --full adds the paper-exact Table 1 run
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

if [[ "${1:-}" == "--full" ]]; then
  ./build/bench/bench_table1 --full 2>&1 | tee table1_full_output.txt
fi

echo "done: test_output.txt, bench_output.txt"
