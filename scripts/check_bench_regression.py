#!/usr/bin/env python3
"""Compare BENCH_*.json exports against committed baselines.

Usage:
    check_bench_regression.py [--baseline-dir bench/baseline] [--report-only]
                              BENCH_fig9.json [BENCH_table2.json ...]

For each candidate file the baseline with the same file name is loaded from
the baseline directory and the two metric trees are compared:

  counters    exact match (event counts are deterministic for a fixed
              configuration; a changed count means the workload changed)
  gauges      relative tolerance (default 5%), except volatile wall-clock
              throughput gauges (*_per_s, *seconds_per_eval*, *speedup*)
              which are reported but never gate
  timers      the call count must match exactly; accumulated seconds gate
              only under the deterministic sim-time prefixes (step/ and
              hw/unit/), where "time" is simulated and bit-stable
  histograms  ignored (distribution shapes are informational)

Keys present on one side only are reported: a missing baseline key FAILs
(coverage regressed), a new candidate key is a NOTE (run with --update or
recommit the baseline to pick it up).

Exit code 0 when every gating comparison passes, 1 otherwise.  With
--report-only all failures are downgraded to notes and the exit code is 0
(CI wires this first so a noisy runner cannot block merges while the
tolerance bands are tuned).

Stdlib only; no external dependencies.
"""

import argparse
import json
import os
import sys

GAUGE_REL_TOL = 0.05
TIMER_REL_TOL = 0.05

# Gauges whose value depends on host wall-clock speed: report, never gate.
VOLATILE_GAUGE_MARKERS = ("_per_s", "seconds_per_eval", "speedup")

# Timer paths where accumulated seconds are *simulated* time (deterministic
# for a fixed configuration) and may gate.
DETERMINISTIC_TIMER_PREFIXES = ("step", "hw/unit/")


def is_volatile_gauge(name):
    return any(marker in name for marker in VOLATILE_GAUGE_MARKERS)


def is_deterministic_timer(path):
    return path == "step" or any(
        path.startswith(p) for p in DETERMINISTIC_TIMER_PREFIXES
    )


def rel_delta(old, new):
    scale = max(abs(old), abs(new))
    if scale == 0.0:
        return 0.0
    return abs(new - old) / scale


class Report:
    def __init__(self, report_only):
        self.report_only = report_only
        self.failures = 0
        self.notes = 0

    def fail(self, msg):
        if self.report_only:
            self.notes += 1
            print(f"  NOTE (would fail): {msg}")
        else:
            self.failures += 1
            print(f"  FAIL: {msg}")

    def note(self, msg):
        self.notes += 1
        print(f"  note: {msg}")


def compare_counters(base, cand, rep):
    for name, value in sorted(base.items()):
        if name not in cand:
            rep.fail(f"counter {name} missing from candidate (baseline {value})")
        elif cand[name] != value:
            rep.fail(f"counter {name}: {value} -> {cand[name]} (exact match required)")
    for name in sorted(set(cand) - set(base)):
        rep.note(f"new counter {name} = {cand[name]} (not in baseline)")


def compare_gauges(base, cand, rep, tol):
    for name, value in sorted(base.items()):
        if name not in cand:
            rep.fail(f"gauge {name} missing from candidate (baseline {value})")
            continue
        delta = rel_delta(value, cand[name])
        if is_volatile_gauge(name):
            if delta > tol:
                rep.note(
                    f"volatile gauge {name}: {value:g} -> {cand[name]:g} "
                    f"({delta * 100:.1f}% shift, not gating)"
                )
            continue
        if delta > tol:
            rep.fail(
                f"gauge {name}: {value:g} -> {cand[name]:g} "
                f"({delta * 100:.1f}% > {tol * 100:.0f}% tolerance)"
            )
    for name in sorted(set(cand) - set(base)):
        rep.note(f"new gauge {name} = {cand[name]:g} (not in baseline)")


def compare_timers(base, cand, rep, tol):
    for path, stat in sorted(base.items()):
        if path not in cand:
            rep.fail(f"timer {path} missing from candidate")
            continue
        cstat = cand[path]
        if cstat.get("count") != stat.get("count"):
            rep.fail(
                f"timer {path} count: {stat.get('count')} -> {cstat.get('count')} "
                "(exact match required)"
            )
        if is_deterministic_timer(path):
            delta = rel_delta(stat.get("seconds", 0.0), cstat.get("seconds", 0.0))
            if delta > tol:
                rep.fail(
                    f"timer {path} seconds: {stat.get('seconds'):g} -> "
                    f"{cstat.get('seconds'):g} ({delta * 100:.1f}% > "
                    f"{tol * 100:.0f}% tolerance; simulated time is deterministic)"
                )
    for path in sorted(set(cand) - set(base)):
        rep.note(f"new timer {path} (not in baseline)")


def compare_file(baseline_path, candidate_path, rep, args):
    with open(baseline_path) as f:
        base = json.load(f)
    with open(candidate_path) as f:
        cand = json.load(f)
    compare_counters(base.get("counters", {}), cand.get("counters", {}), rep)
    compare_gauges(base.get("gauges", {}), cand.get("gauges", {}), rep, args.gauge_tol)
    compare_timers(base.get("timers", {}), cand.get("timers", {}), rep, args.timer_tol)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidates", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--baseline-dir",
        default="bench/baseline",
        help="directory holding committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print failures as notes and always exit 0",
    )
    parser.add_argument("--gauge-tol", type=float, default=GAUGE_REL_TOL)
    parser.add_argument("--timer-tol", type=float, default=TIMER_REL_TOL)
    args = parser.parse_args()

    rep = Report(args.report_only)
    checked = 0
    for candidate in args.candidates:
        name = os.path.basename(candidate)
        baseline = os.path.join(args.baseline_dir, name)
        print(f"{name}:")
        if not os.path.exists(baseline):
            rep.note(f"no baseline at {baseline}; skipping")
            continue
        if not os.path.exists(candidate):
            rep.fail(f"candidate {candidate} does not exist")
            continue
        compare_file(baseline, candidate, rep, args)
        checked += 1
        print(f"  checked against {baseline}")

    print(
        f"\n{checked} file(s) compared, {rep.failures} failure(s), "
        f"{rep.notes} note(s)"
        + (" [report-only]" if args.report_only else "")
    )
    return 1 if rep.failures > 0 else 0


if __name__ == "__main__":
    sys.exit(main())
