#!/usr/bin/env python3
"""Validate a Chrome trace-event / Perfetto JSON file (stdlib only).

Usage:
    validate_trace.py TRACE_fig9.json [--require-hardware] [--require-counters]
                      [--require-workers N] [--require-flow]

Checks, against the trace-event format Chrome and Perfetto accept:
  - the top level is an object with a "traceEvents" array
  - every event has ph/pid/tid, and ts except metadata ("M") records
  - "X" (complete) events carry a numeric non-negative dur
  - "i" (instant) events carry a valid scope s in {"t", "p", "g"} when present
  - "C" (counter) events carry numeric args values
  - "M" records are process_name / thread_name with args.name
  - per-(pid, tid) track timestamps of sorted export are monotone
  - dropped-event accounting in otherData is consistent

--require-hardware additionally fails unless at least one process besides
"software" has span events (the simulated-machine tracks), and
--require-counters unless at least one counter series exists (per-link
telemetry).

For merged fleet timelines (the worker_drill/chaos_drill --trace-out output):
--require-workers N fails unless at least N distinct "worker <rank> (pid ..)"
process tracks carry span events, --require-flow unless dispatch -> task flow
arrows ("s"/"f" pairs sharing a flow id) are present; both also validate the
otherData clock-offset table and the span-conservation ledger
(telemetry_emitted == telemetry_events_merged + telemetry_dropped).
Exit code 0 = valid.
"""

import argparse
import collections
import json
import sys

VALID_PH = {"X", "i", "C", "M", "B", "E", "b", "e", "n", "s", "t", "f"}
VALID_INSTANT_SCOPES = {"t", "p", "g"}


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument("--require-hardware", action="store_true",
                        help="fail unless simulated-hardware tracks are present")
    parser.add_argument("--require-counters", action="store_true",
                        help="fail unless counter series are present")
    parser.add_argument("--require-workers", type=int, default=0, metavar="N",
                        help="fail unless >= N worker process tracks have spans")
    parser.add_argument("--require-flow", action="store_true",
                        help="fail unless paired flow arrows (s/f) are present")
    args = parser.parse_args()

    with open(args.trace) as f:
        root = json.load(f)

    if not isinstance(root, dict) or "traceEvents" not in root:
        return fail("top level must be an object with a traceEvents array")
    events = root["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents is not an array")

    process_names = {}
    spans_by_process = collections.Counter()
    counter_events = 0
    flow_starts = set()
    flow_finishes = set()
    instant_names = collections.Counter()
    last_ts = {}
    for i, e in enumerate(events):
        where = f"event #{i}"
        if not isinstance(e, dict):
            return fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in VALID_PH:
            return fail(f"{where}: invalid ph {ph!r}")
        if "pid" not in e or "tid" not in e:
            return fail(f"{where}: missing pid/tid")
        if ph == "M":
            if e.get("name") in ("process_name", "thread_name"):
                if "name" not in e.get("args", {}):
                    return fail(f"{where}: metadata record without args.name")
                if e["name"] == "process_name":
                    process_names[e["pid"]] = e["args"]["name"]
            continue
        if "ts" not in e or not isinstance(e["ts"], (int, float)):
            return fail(f"{where}: missing or non-numeric ts")
        if "name" not in e or not isinstance(e["name"], str):
            return fail(f"{where}: missing name")
        key = (e["pid"], e["tid"])
        if e["ts"] < last_ts.get(key, float("-inf")):
            return fail(
                f"{where}: ts {e['ts']} not monotone on track pid={e['pid']} "
                f"tid={e['tid']} (prev {last_ts[key]})"
            )
        last_ts[key] = e["ts"]
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: complete event with invalid dur {dur!r}")
            spans_by_process[e["pid"]] += 1
        elif ph == "i":
            if "s" in e and e["s"] not in VALID_INSTANT_SCOPES:
                return fail(f"{where}: instant event with invalid scope {e['s']!r}")
            instant_names[e["name"]] += 1
        elif ph in ("s", "f"):
            if "id" not in e:
                return fail(f"{where}: flow event without an id")
            if ph == "s":
                flow_starts.add(e["id"])
            else:
                if e.get("bp") != "e":
                    return fail(f"{where}: flow finish without bp=e binding")
                flow_finishes.add(e["id"])
        elif ph == "C":
            trace_args = e.get("args")
            if not isinstance(trace_args, dict) or not trace_args:
                return fail(f"{where}: counter event without args")
            for k, v in trace_args.items():
                if not isinstance(v, (int, float)):
                    return fail(f"{where}: counter series {k} non-numeric: {v!r}")
            counter_events += 1

    other = root.get("otherData", {})
    dropped = other.get("trace_dropped")
    if dropped is not None and dropped > 0:
        print(f"note: {dropped} events were dropped (ring buffers full)")

    # Span-conservation ledger of a merged fleet timeline: every span a
    # worker emitted is either merged into this file or accounted as dropped.
    if "telemetry_emitted" in other:
        emitted = other["telemetry_emitted"]
        merged = other.get("telemetry_events_merged", 0)
        tdropped = other.get("telemetry_dropped", 0)
        if emitted != merged + tdropped:
            return fail(
                f"span conservation violated: emitted {emitted} != "
                f"merged {merged} + dropped {tdropped}"
            )
    if "clock_offsets" in other:
        for i, row in enumerate(other["clock_offsets"]):
            for field in ("rank", "pid", "offset_us", "rtt_us", "has_offset"):
                if field not in row:
                    return fail(f"clock_offsets[{i}]: missing {field}")
            if row["has_offset"] and abs(row["offset_us"]) > 0 and row["rtt_us"] < 0:
                return fail(f"clock_offsets[{i}]: negative RTT with an offset")

    hardware_procs = sorted(
        process_names[pid]
        for pid in spans_by_process
        if process_names.get(pid, "") != "software"
    )
    if args.require_hardware and not hardware_procs:
        return fail("no simulated-hardware span tracks found")
    if args.require_counters and counter_events == 0:
        return fail("no counter series found")

    worker_procs = sorted(
        process_names[pid]
        for pid in spans_by_process
        if process_names.get(pid, "").startswith("worker ")
    )
    if args.require_workers and len(worker_procs) < args.require_workers:
        return fail(
            f"only {len(worker_procs)} worker process track(s) with spans "
            f"(need {args.require_workers}): {', '.join(worker_procs) or 'none'}"
        )
    if args.require_flow:
        if not flow_starts:
            return fail("no flow-start (ph=s) events found")
        if not flow_finishes:
            return fail("no flow-finish (ph=f) events found")
        unmatched = flow_finishes - flow_starts
        if unmatched:
            # A dropped flow start (ring overflow) legitimately orphans its
            # finish; only a drop-free trace must pair every arrow.
            any_drops = (dropped or 0) + other.get("telemetry_dropped", 0)
            msg = (
                f"{len(unmatched)} flow finish(es) without a matching start "
                f"(e.g. id {sorted(unmatched)[0]})"
            )
            if any_drops:
                print(f"note: {msg} — tolerated, {any_drops} drops reported")
            else:
                return fail(msg)

    n_spans = sum(spans_by_process.values())
    print(
        f"OK: {len(events)} events ({n_spans} spans, {counter_events} counter "
        f"samples, {len(flow_starts)}/{len(flow_finishes)} flow s/f) across "
        f"{len(process_names)} processes"
        + (f"; hardware tracks: {', '.join(hardware_procs)}" if hardware_procs else "")
        + (f"; worker tracks: {', '.join(worker_procs)}" if worker_procs else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
