#!/usr/bin/env python3
"""Validate a Chrome trace-event / Perfetto JSON file (stdlib only).

Usage:
    validate_trace.py TRACE_fig9.json [--require-hardware] [--require-counters]

Checks, against the trace-event format Chrome and Perfetto accept:
  - the top level is an object with a "traceEvents" array
  - every event has ph/pid/tid, and ts except metadata ("M") records
  - "X" (complete) events carry a numeric non-negative dur
  - "i" (instant) events carry a valid scope s in {"t", "p", "g"} when present
  - "C" (counter) events carry numeric args values
  - "M" records are process_name / thread_name with args.name
  - per-(pid, tid) track timestamps of sorted export are monotone
  - dropped-event accounting in otherData is consistent

--require-hardware additionally fails unless at least one process besides
"software" has span events (the simulated-machine tracks), and
--require-counters unless at least one counter series exists (per-link
telemetry).  Exit code 0 = valid.
"""

import argparse
import collections
import json
import sys

VALID_PH = {"X", "i", "C", "M", "B", "E", "b", "e", "n", "s", "t", "f"}
VALID_INSTANT_SCOPES = {"t", "p", "g"}


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument("--require-hardware", action="store_true",
                        help="fail unless simulated-hardware tracks are present")
    parser.add_argument("--require-counters", action="store_true",
                        help="fail unless counter series are present")
    args = parser.parse_args()

    with open(args.trace) as f:
        root = json.load(f)

    if not isinstance(root, dict) or "traceEvents" not in root:
        return fail("top level must be an object with a traceEvents array")
    events = root["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents is not an array")

    process_names = {}
    spans_by_process = collections.Counter()
    counter_events = 0
    last_ts = {}
    for i, e in enumerate(events):
        where = f"event #{i}"
        if not isinstance(e, dict):
            return fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in VALID_PH:
            return fail(f"{where}: invalid ph {ph!r}")
        if "pid" not in e or "tid" not in e:
            return fail(f"{where}: missing pid/tid")
        if ph == "M":
            if e.get("name") in ("process_name", "thread_name"):
                if "name" not in e.get("args", {}):
                    return fail(f"{where}: metadata record without args.name")
                if e["name"] == "process_name":
                    process_names[e["pid"]] = e["args"]["name"]
            continue
        if "ts" not in e or not isinstance(e["ts"], (int, float)):
            return fail(f"{where}: missing or non-numeric ts")
        if "name" not in e or not isinstance(e["name"], str):
            return fail(f"{where}: missing name")
        key = (e["pid"], e["tid"])
        if e["ts"] < last_ts.get(key, float("-inf")):
            return fail(
                f"{where}: ts {e['ts']} not monotone on track pid={e['pid']} "
                f"tid={e['tid']} (prev {last_ts[key]})"
            )
        last_ts[key] = e["ts"]
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: complete event with invalid dur {dur!r}")
            spans_by_process[e["pid"]] += 1
        elif ph == "i":
            if "s" in e and e["s"] not in VALID_INSTANT_SCOPES:
                return fail(f"{where}: instant event with invalid scope {e['s']!r}")
        elif ph == "C":
            trace_args = e.get("args")
            if not isinstance(trace_args, dict) or not trace_args:
                return fail(f"{where}: counter event without args")
            for k, v in trace_args.items():
                if not isinstance(v, (int, float)):
                    return fail(f"{where}: counter series {k} non-numeric: {v!r}")
            counter_events += 1

    other = root.get("otherData", {})
    dropped = other.get("trace_dropped")
    if dropped is not None and dropped > 0:
        print(f"note: {dropped} events were dropped (ring buffers full)")

    hardware_procs = sorted(
        process_names[pid]
        for pid in spans_by_process
        if process_names.get(pid, "") != "software"
    )
    if args.require_hardware and not hardware_procs:
        return fail("no simulated-hardware span tracks found")
    if args.require_counters and counter_events == 0:
        return fail("no counter series found")

    n_spans = sum(spans_by_process.values())
    print(
        f"OK: {len(events)} events ({n_spans} spans, {counter_events} counter "
        f"samples) across {len(process_names)} processes"
        + (f"; hardware tracks: {', '.join(hardware_procs)}" if hardware_procs else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
