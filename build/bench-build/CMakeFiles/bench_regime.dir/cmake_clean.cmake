file(REMOVE_RECURSE
  "../bench/bench_regime"
  "../bench/bench_regime.pdb"
  "CMakeFiles/bench_regime.dir/bench_regime.cpp.o"
  "CMakeFiles/bench_regime.dir/bench_regime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
