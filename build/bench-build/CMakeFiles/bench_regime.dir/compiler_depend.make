# Empty compiler generated dependencies file for bench_regime.
# This may be replaced when dependencies are built.
