file(REMOVE_RECURSE
  "../bench/bench_64grid"
  "../bench/bench_64grid.pdb"
  "CMakeFiles/bench_64grid.dir/bench_64grid.cpp.o"
  "CMakeFiles/bench_64grid.dir/bench_64grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_64grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
