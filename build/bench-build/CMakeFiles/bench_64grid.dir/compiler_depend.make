# Empty compiler generated dependencies file for bench_64grid.
# This may be replaced when dependencies are built.
