file(REMOVE_RECURSE
  "../bench/bench_costmodel"
  "../bench/bench_costmodel.pdb"
  "CMakeFiles/bench_costmodel.dir/bench_costmodel.cpp.o"
  "CMakeFiles/bench_costmodel.dir/bench_costmodel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
