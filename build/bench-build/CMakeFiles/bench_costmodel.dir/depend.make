# Empty dependencies file for bench_costmodel.
# This may be replaced when dependencies are built.
