file(REMOVE_RECURSE
  "CMakeFiles/hw_timechart.dir/hw_timechart.cpp.o"
  "CMakeFiles/hw_timechart.dir/hw_timechart.cpp.o.d"
  "hw_timechart"
  "hw_timechart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_timechart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
