# Empty compiler generated dependencies file for hw_timechart.
# This may be replaced when dependencies are built.
