# Empty dependencies file for parallel_traffic.
# This may be replaced when dependencies are built.
