file(REMOVE_RECURSE
  "CMakeFiles/parallel_traffic.dir/parallel_traffic.cpp.o"
  "CMakeFiles/parallel_traffic.dir/parallel_traffic.cpp.o.d"
  "parallel_traffic"
  "parallel_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
