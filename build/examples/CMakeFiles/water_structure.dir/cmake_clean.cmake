file(REMOVE_RECURSE
  "CMakeFiles/water_structure.dir/water_structure.cpp.o"
  "CMakeFiles/water_structure.dir/water_structure.cpp.o.d"
  "water_structure"
  "water_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
