# Empty compiler generated dependencies file for water_structure.
# This may be replaced when dependencies are built.
