file(REMOVE_RECURSE
  "CMakeFiles/solvated_polymer.dir/solvated_polymer.cpp.o"
  "CMakeFiles/solvated_polymer.dir/solvated_polymer.cpp.o.d"
  "solvated_polymer"
  "solvated_polymer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvated_polymer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
