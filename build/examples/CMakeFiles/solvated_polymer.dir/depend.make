# Empty dependencies file for solvated_polymer.
# This may be replaced when dependencies are built.
