# Empty compiler generated dependencies file for madelung.
# This may be replaced when dependencies are built.
