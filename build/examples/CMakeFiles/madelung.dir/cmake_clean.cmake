file(REMOVE_RECURSE
  "CMakeFiles/madelung.dir/madelung.cpp.o"
  "CMakeFiles/madelung.dir/madelung.cpp.o.d"
  "madelung"
  "madelung.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madelung.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
