file(REMOVE_RECURSE
  "CMakeFiles/water_nve.dir/water_nve.cpp.o"
  "CMakeFiles/water_nve.dir/water_nve.cpp.o.d"
  "water_nve"
  "water_nve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_nve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
