# Empty compiler generated dependencies file for water_nve.
# This may be replaced when dependencies are built.
