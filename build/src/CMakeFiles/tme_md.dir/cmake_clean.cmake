file(REMOVE_RECURSE
  "CMakeFiles/tme_md.dir/md/bonded.cpp.o"
  "CMakeFiles/tme_md.dir/md/bonded.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/cell_list.cpp.o"
  "CMakeFiles/tme_md.dir/md/cell_list.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/forcefield.cpp.o"
  "CMakeFiles/tme_md.dir/md/forcefield.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/integrator.cpp.o"
  "CMakeFiles/tme_md.dir/md/integrator.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/observables.cpp.o"
  "CMakeFiles/tme_md.dir/md/observables.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/pair_list.cpp.o"
  "CMakeFiles/tme_md.dir/md/pair_list.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/settle.cpp.o"
  "CMakeFiles/tme_md.dir/md/settle.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/short_range.cpp.o"
  "CMakeFiles/tme_md.dir/md/short_range.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/system.cpp.o"
  "CMakeFiles/tme_md.dir/md/system.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/thermostat.cpp.o"
  "CMakeFiles/tme_md.dir/md/thermostat.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/topology.cpp.o"
  "CMakeFiles/tme_md.dir/md/topology.cpp.o.d"
  "CMakeFiles/tme_md.dir/md/water_box.cpp.o"
  "CMakeFiles/tme_md.dir/md/water_box.cpp.o.d"
  "libtme_md.a"
  "libtme_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
