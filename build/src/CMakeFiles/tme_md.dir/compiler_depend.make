# Empty compiler generated dependencies file for tme_md.
# This may be replaced when dependencies are built.
