file(REMOVE_RECURSE
  "libtme_md.a"
)
