
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/bonded.cpp" "src/CMakeFiles/tme_md.dir/md/bonded.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/bonded.cpp.o.d"
  "/root/repo/src/md/cell_list.cpp" "src/CMakeFiles/tme_md.dir/md/cell_list.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/cell_list.cpp.o.d"
  "/root/repo/src/md/forcefield.cpp" "src/CMakeFiles/tme_md.dir/md/forcefield.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/forcefield.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/CMakeFiles/tme_md.dir/md/integrator.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/integrator.cpp.o.d"
  "/root/repo/src/md/observables.cpp" "src/CMakeFiles/tme_md.dir/md/observables.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/observables.cpp.o.d"
  "/root/repo/src/md/pair_list.cpp" "src/CMakeFiles/tme_md.dir/md/pair_list.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/pair_list.cpp.o.d"
  "/root/repo/src/md/settle.cpp" "src/CMakeFiles/tme_md.dir/md/settle.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/settle.cpp.o.d"
  "/root/repo/src/md/short_range.cpp" "src/CMakeFiles/tme_md.dir/md/short_range.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/short_range.cpp.o.d"
  "/root/repo/src/md/system.cpp" "src/CMakeFiles/tme_md.dir/md/system.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/system.cpp.o.d"
  "/root/repo/src/md/thermostat.cpp" "src/CMakeFiles/tme_md.dir/md/thermostat.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/thermostat.cpp.o.d"
  "/root/repo/src/md/topology.cpp" "src/CMakeFiles/tme_md.dir/md/topology.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/topology.cpp.o.d"
  "/root/repo/src/md/water_box.cpp" "src/CMakeFiles/tme_md.dir/md/water_box.cpp.o" "gcc" "src/CMakeFiles/tme_md.dir/md/water_box.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tme_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_spline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_quadrature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
