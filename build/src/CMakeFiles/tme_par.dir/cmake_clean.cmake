file(REMOVE_RECURSE
  "CMakeFiles/tme_par.dir/par/decomposition.cpp.o"
  "CMakeFiles/tme_par.dir/par/decomposition.cpp.o.d"
  "CMakeFiles/tme_par.dir/par/par_tme.cpp.o"
  "CMakeFiles/tme_par.dir/par/par_tme.cpp.o.d"
  "CMakeFiles/tme_par.dir/par/traffic.cpp.o"
  "CMakeFiles/tme_par.dir/par/traffic.cpp.o.d"
  "libtme_par.a"
  "libtme_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
