file(REMOVE_RECURSE
  "libtme_par.a"
)
