# Empty dependencies file for tme_par.
# This may be replaced when dependencies are built.
