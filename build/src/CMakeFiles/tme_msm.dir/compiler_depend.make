# Empty compiler generated dependencies file for tme_msm.
# This may be replaced when dependencies are built.
