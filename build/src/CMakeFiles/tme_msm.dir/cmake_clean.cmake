file(REMOVE_RECURSE
  "CMakeFiles/tme_msm.dir/msm/msm.cpp.o"
  "CMakeFiles/tme_msm.dir/msm/msm.cpp.o.d"
  "libtme_msm.a"
  "libtme_msm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
