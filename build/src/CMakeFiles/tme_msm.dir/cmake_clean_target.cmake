file(REMOVE_RECURSE
  "libtme_msm.a"
)
