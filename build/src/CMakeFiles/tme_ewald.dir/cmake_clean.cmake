file(REMOVE_RECURSE
  "CMakeFiles/tme_ewald.dir/ewald/charge_assignment.cpp.o"
  "CMakeFiles/tme_ewald.dir/ewald/charge_assignment.cpp.o.d"
  "CMakeFiles/tme_ewald.dir/ewald/greens_function.cpp.o"
  "CMakeFiles/tme_ewald.dir/ewald/greens_function.cpp.o.d"
  "CMakeFiles/tme_ewald.dir/ewald/reference_ewald.cpp.o"
  "CMakeFiles/tme_ewald.dir/ewald/reference_ewald.cpp.o.d"
  "CMakeFiles/tme_ewald.dir/ewald/splitting.cpp.o"
  "CMakeFiles/tme_ewald.dir/ewald/splitting.cpp.o.d"
  "CMakeFiles/tme_ewald.dir/ewald/spme.cpp.o"
  "CMakeFiles/tme_ewald.dir/ewald/spme.cpp.o.d"
  "libtme_ewald.a"
  "libtme_ewald.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_ewald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
