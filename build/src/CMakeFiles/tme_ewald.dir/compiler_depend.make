# Empty compiler generated dependencies file for tme_ewald.
# This may be replaced when dependencies are built.
