file(REMOVE_RECURSE
  "libtme_ewald.a"
)
