# Empty compiler generated dependencies file for tme_fixed.
# This may be replaced when dependencies are built.
