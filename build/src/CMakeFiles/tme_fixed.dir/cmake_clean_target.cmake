file(REMOVE_RECURSE
  "libtme_fixed.a"
)
