file(REMOVE_RECURSE
  "CMakeFiles/tme_fixed.dir/fixed/fixed_point.cpp.o"
  "CMakeFiles/tme_fixed.dir/fixed/fixed_point.cpp.o.d"
  "libtme_fixed.a"
  "libtme_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
