file(REMOVE_RECURSE
  "CMakeFiles/tme_spline.dir/spline/bspline.cpp.o"
  "CMakeFiles/tme_spline.dir/spline/bspline.cpp.o.d"
  "CMakeFiles/tme_spline.dir/spline/interpolation_coeffs.cpp.o"
  "CMakeFiles/tme_spline.dir/spline/interpolation_coeffs.cpp.o.d"
  "CMakeFiles/tme_spline.dir/spline/two_scale.cpp.o"
  "CMakeFiles/tme_spline.dir/spline/two_scale.cpp.o.d"
  "libtme_spline.a"
  "libtme_spline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
