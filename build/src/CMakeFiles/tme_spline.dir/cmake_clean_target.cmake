file(REMOVE_RECURSE
  "libtme_spline.a"
)
