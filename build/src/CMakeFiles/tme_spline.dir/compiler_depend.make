# Empty compiler generated dependencies file for tme_spline.
# This may be replaced when dependencies are built.
