# Empty compiler generated dependencies file for tme_core.
# This may be replaced when dependencies are built.
