
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/tme_core.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/gaussian_fit.cpp" "src/CMakeFiles/tme_core.dir/core/gaussian_fit.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/gaussian_fit.cpp.o.d"
  "/root/repo/src/core/grid_kernel.cpp" "src/CMakeFiles/tme_core.dir/core/grid_kernel.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/grid_kernel.cpp.o.d"
  "/root/repo/src/core/tme.cpp" "src/CMakeFiles/tme_core.dir/core/tme.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/tme.cpp.o.d"
  "/root/repo/src/core/tme_fixed.cpp" "src/CMakeFiles/tme_core.dir/core/tme_fixed.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/tme_fixed.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "src/CMakeFiles/tme_core.dir/core/tuning.cpp.o" "gcc" "src/CMakeFiles/tme_core.dir/core/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tme_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_spline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_quadrature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
