file(REMOVE_RECURSE
  "CMakeFiles/tme_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/tme_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/tme_core.dir/core/gaussian_fit.cpp.o"
  "CMakeFiles/tme_core.dir/core/gaussian_fit.cpp.o.d"
  "CMakeFiles/tme_core.dir/core/grid_kernel.cpp.o"
  "CMakeFiles/tme_core.dir/core/grid_kernel.cpp.o.d"
  "CMakeFiles/tme_core.dir/core/tme.cpp.o"
  "CMakeFiles/tme_core.dir/core/tme.cpp.o.d"
  "CMakeFiles/tme_core.dir/core/tme_fixed.cpp.o"
  "CMakeFiles/tme_core.dir/core/tme_fixed.cpp.o.d"
  "CMakeFiles/tme_core.dir/core/tuning.cpp.o"
  "CMakeFiles/tme_core.dir/core/tuning.cpp.o.d"
  "libtme_core.a"
  "libtme_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
