file(REMOVE_RECURSE
  "libtme_core.a"
)
