# Empty dependencies file for tme_hw.
# This may be replaced when dependencies are built.
