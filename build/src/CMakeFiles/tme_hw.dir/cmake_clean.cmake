file(REMOVE_RECURSE
  "CMakeFiles/tme_hw.dir/hw/event_sim.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/event_sim.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/fpga_fft.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/fpga_fft.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/gcu_functional.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/gcu_functional.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/gcu_model.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/gcu_model.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/lru_functional.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/lru_functional.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/lru_model.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/lru_model.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/machine.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/machine.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/network_model.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/network_model.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/timechart.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/timechart.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/tmenw_model.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/tmenw_model.cpp.o.d"
  "CMakeFiles/tme_hw.dir/hw/torus.cpp.o"
  "CMakeFiles/tme_hw.dir/hw/torus.cpp.o.d"
  "libtme_hw.a"
  "libtme_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
