
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/event_sim.cpp" "src/CMakeFiles/tme_hw.dir/hw/event_sim.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/event_sim.cpp.o.d"
  "/root/repo/src/hw/fpga_fft.cpp" "src/CMakeFiles/tme_hw.dir/hw/fpga_fft.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/fpga_fft.cpp.o.d"
  "/root/repo/src/hw/gcu_functional.cpp" "src/CMakeFiles/tme_hw.dir/hw/gcu_functional.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/gcu_functional.cpp.o.d"
  "/root/repo/src/hw/gcu_model.cpp" "src/CMakeFiles/tme_hw.dir/hw/gcu_model.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/gcu_model.cpp.o.d"
  "/root/repo/src/hw/lru_functional.cpp" "src/CMakeFiles/tme_hw.dir/hw/lru_functional.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/lru_functional.cpp.o.d"
  "/root/repo/src/hw/lru_model.cpp" "src/CMakeFiles/tme_hw.dir/hw/lru_model.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/lru_model.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/CMakeFiles/tme_hw.dir/hw/machine.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/machine.cpp.o.d"
  "/root/repo/src/hw/network_model.cpp" "src/CMakeFiles/tme_hw.dir/hw/network_model.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/network_model.cpp.o.d"
  "/root/repo/src/hw/timechart.cpp" "src/CMakeFiles/tme_hw.dir/hw/timechart.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/timechart.cpp.o.d"
  "/root/repo/src/hw/tmenw_model.cpp" "src/CMakeFiles/tme_hw.dir/hw/tmenw_model.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/tmenw_model.cpp.o.d"
  "/root/repo/src/hw/torus.cpp" "src/CMakeFiles/tme_hw.dir/hw/torus.cpp.o" "gcc" "src/CMakeFiles/tme_hw.dir/hw/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tme_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_spline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_quadrature.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
