file(REMOVE_RECURSE
  "libtme_hw.a"
)
