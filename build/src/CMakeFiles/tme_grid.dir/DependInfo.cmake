
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/grid3d.cpp" "src/CMakeFiles/tme_grid.dir/grid/grid3d.cpp.o" "gcc" "src/CMakeFiles/tme_grid.dir/grid/grid3d.cpp.o.d"
  "/root/repo/src/grid/separable_conv.cpp" "src/CMakeFiles/tme_grid.dir/grid/separable_conv.cpp.o" "gcc" "src/CMakeFiles/tme_grid.dir/grid/separable_conv.cpp.o.d"
  "/root/repo/src/grid/transfer.cpp" "src/CMakeFiles/tme_grid.dir/grid/transfer.cpp.o" "gcc" "src/CMakeFiles/tme_grid.dir/grid/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tme_spline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tme_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
