file(REMOVE_RECURSE
  "CMakeFiles/tme_grid.dir/grid/grid3d.cpp.o"
  "CMakeFiles/tme_grid.dir/grid/grid3d.cpp.o.d"
  "CMakeFiles/tme_grid.dir/grid/separable_conv.cpp.o"
  "CMakeFiles/tme_grid.dir/grid/separable_conv.cpp.o.d"
  "CMakeFiles/tme_grid.dir/grid/transfer.cpp.o"
  "CMakeFiles/tme_grid.dir/grid/transfer.cpp.o.d"
  "libtme_grid.a"
  "libtme_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
