# Empty compiler generated dependencies file for tme_grid.
# This may be replaced when dependencies are built.
