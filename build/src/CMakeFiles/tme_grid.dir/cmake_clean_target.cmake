file(REMOVE_RECURSE
  "libtme_grid.a"
)
