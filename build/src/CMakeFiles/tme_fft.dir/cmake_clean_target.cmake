file(REMOVE_RECURSE
  "libtme_fft.a"
)
