# Empty dependencies file for tme_fft.
# This may be replaced when dependencies are built.
