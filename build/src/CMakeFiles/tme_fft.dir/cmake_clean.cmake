file(REMOVE_RECURSE
  "CMakeFiles/tme_fft.dir/fft/fft1d.cpp.o"
  "CMakeFiles/tme_fft.dir/fft/fft1d.cpp.o.d"
  "CMakeFiles/tme_fft.dir/fft/fft3d.cpp.o"
  "CMakeFiles/tme_fft.dir/fft/fft3d.cpp.o.d"
  "libtme_fft.a"
  "libtme_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
