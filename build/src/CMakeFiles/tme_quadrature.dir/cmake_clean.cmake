file(REMOVE_RECURSE
  "CMakeFiles/tme_quadrature.dir/quadrature/gauss_legendre.cpp.o"
  "CMakeFiles/tme_quadrature.dir/quadrature/gauss_legendre.cpp.o.d"
  "libtme_quadrature.a"
  "libtme_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
