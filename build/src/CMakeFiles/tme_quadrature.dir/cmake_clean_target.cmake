file(REMOVE_RECURSE
  "libtme_quadrature.a"
)
