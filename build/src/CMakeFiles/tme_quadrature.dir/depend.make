# Empty dependencies file for tme_quadrature.
# This may be replaced when dependencies are built.
