file(REMOVE_RECURSE
  "CMakeFiles/tme_util.dir/util/args.cpp.o"
  "CMakeFiles/tme_util.dir/util/args.cpp.o.d"
  "CMakeFiles/tme_util.dir/util/io.cpp.o"
  "CMakeFiles/tme_util.dir/util/io.cpp.o.d"
  "CMakeFiles/tme_util.dir/util/logging.cpp.o"
  "CMakeFiles/tme_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/tme_util.dir/util/parallel.cpp.o"
  "CMakeFiles/tme_util.dir/util/parallel.cpp.o.d"
  "libtme_util.a"
  "libtme_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tme_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
