file(REMOVE_RECURSE
  "libtme_util.a"
)
