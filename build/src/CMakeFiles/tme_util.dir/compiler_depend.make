# Empty compiler generated dependencies file for tme_util.
# This may be replaced when dependencies are built.
