file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_fft.dir/test_fpga_fft.cpp.o"
  "CMakeFiles/test_fpga_fft.dir/test_fpga_fft.cpp.o.d"
  "test_fpga_fft"
  "test_fpga_fft.pdb"
  "test_fpga_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
