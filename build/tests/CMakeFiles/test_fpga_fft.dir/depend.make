# Empty dependencies file for test_fpga_fft.
# This may be replaced when dependencies are built.
