file(REMOVE_RECURSE
  "CMakeFiles/test_gradients.dir/test_gradients.cpp.o"
  "CMakeFiles/test_gradients.dir/test_gradients.cpp.o.d"
  "test_gradients"
  "test_gradients.pdb"
  "test_gradients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
