file(REMOVE_RECURSE
  "CMakeFiles/test_md_extras.dir/test_md_extras.cpp.o"
  "CMakeFiles/test_md_extras.dir/test_md_extras.cpp.o.d"
  "test_md_extras"
  "test_md_extras.pdb"
  "test_md_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
