# Empty dependencies file for test_md_extras.
# This may be replaced when dependencies are built.
