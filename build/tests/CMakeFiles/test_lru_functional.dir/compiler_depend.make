# Empty compiler generated dependencies file for test_lru_functional.
# This may be replaced when dependencies are built.
