file(REMOVE_RECURSE
  "CMakeFiles/test_lru_functional.dir/test_lru_functional.cpp.o"
  "CMakeFiles/test_lru_functional.dir/test_lru_functional.cpp.o.d"
  "test_lru_functional"
  "test_lru_functional.pdb"
  "test_lru_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lru_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
