# Empty compiler generated dependencies file for test_gcu_functional.
# This may be replaced when dependencies are built.
