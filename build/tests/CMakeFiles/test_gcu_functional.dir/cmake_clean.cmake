file(REMOVE_RECURSE
  "CMakeFiles/test_gcu_functional.dir/test_gcu_functional.cpp.o"
  "CMakeFiles/test_gcu_functional.dir/test_gcu_functional.cpp.o.d"
  "test_gcu_functional"
  "test_gcu_functional.pdb"
  "test_gcu_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcu_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
