file(REMOVE_RECURSE
  "CMakeFiles/test_spline.dir/test_spline.cpp.o"
  "CMakeFiles/test_spline.dir/test_spline.cpp.o.d"
  "test_spline"
  "test_spline.pdb"
  "test_spline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
