# Empty dependencies file for test_spline.
# This may be replaced when dependencies are built.
