# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_quadrature[1]_include.cmake")
include("/root/repo/build/tests/test_spline[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_ewald[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_fixed[1]_include.cmake")
include("/root/repo/build/tests/test_md[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_msm[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_md_extras[1]_include.cmake")
include("/root/repo/build/tests/test_gradients[1]_include.cmake")
include("/root/repo/build/tests/test_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_gcu_functional[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_fft[1]_include.cmake")
include("/root/repo/build/tests/test_lru_functional[1]_include.cmake")
include("/root/repo/build/tests/test_observables[1]_include.cmake")
